"""Array-lowered replay: flat int64 tables behind ``CompiledProblem.evaluate_batch``.

The compiled replay loop in :mod:`repro.dse.compile` walks per-candidate
Python object graphs -- node objects, arc objects, a function call per
weight per iteration.  This module lowers one *specialised*
:class:`~repro.core.spec.EquivalentModelSpec` into an
:class:`ArrayProgram`: contiguous integer tables (a node index
vocabulary, per-node predecessor arc lists, per-iteration duration
streams materialised up front, stimulus offer schedules as plain int
lists) so that replaying the Reception/Emission protocol becomes a
tight loop over list indices -- and, with the optional ``numpy``
backend, one vectorised sweep across every candidate of an NSGA-II
generation at once.

Invariants:

* **Exactness.**  Both backends compute the very same (max, +)
  recurrence as :class:`~repro.tdg.evaluator.TDGEvaluator` over int64
  picoseconds; results are bit-identical, instant for instant, to the
  per-candidate replay of :meth:`CompiledProblem.evaluate` (asserted by
  the equivalence suites).  ε is represented by the sentinel
  :data:`NEG_EPSILON`; real instants are non-negative and durations are
  far below ``2**61``, so ``sentinel + weight`` stays below
  :data:`EPSILON_THRESHOLD` and can never collide with a real instant
  (and stays far from int64 overflow on the numpy path).
* **Reference path stays pure Python.**  The ``python`` backend has no
  third-party dependency; ``numpy`` is auto-detected and selected via
  :func:`resolve_backend` / the ``REPRO_DSE_BACKEND`` environment
  variable, and vectorises across candidates sharing a template.
* **Lowering is conservative.**  Any weight that is not a constant or a
  :class:`_TabulatedWeight` stream (i.e. genuinely context-dependent)
  refuses to lower (:class:`LoweringUnsupported`), and the caller falls
  back to the object-graph replay -- never a silently wrong instant.

This module also owns :class:`_TabulatedWeight` and :class:`_TokenTable`
(shared per-iteration duration/token streams), which
:mod:`repro.dse.compile` re-exports for backward compatibility.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .. import telemetry
from ..archmodel.token import DataToken
from ..archmodel.workload import ExecutionTimeModel
from ..environment.stimulus import Stimulus
from ..errors import ComputationError, GraphError, ModelError
from ..kernel.simtime import Duration

__all__ = [
    "BACKENDS",
    "NEG_EPSILON",
    "EPSILON_THRESHOLD",
    "ArrayProgram",
    "LoweringUnsupported",
    "lower_spec",
    "numpy_available",
    "replay_batch",
    "replay_program",
    "resolve_backend",
]

#: Supported array backends, in reference-first order.
BACKENDS: Tuple[str, ...] = ("python", "numpy")

#: ε (no value yet) as an int64 sentinel.  Real instants are >= 0.
NEG_EPSILON = -(1 << 62)

#: Anything at or below this is ε.  ``NEG_EPSILON + weight`` stays below it
#: for every valid duration (durations are validated non-negative and far
#: below 2**61), so ε never masquerades as a real instant after a (+).
EPSILON_THRESHOLD = -(1 << 61)


class _TabulatedWeight:
    """Per-iteration workload durations, evaluated once and shared across candidates.

    The arc-weight protocol is ``weight(k, context) -> Duration``; the table
    ignores the per-candidate context and uses the problem's own (identical)
    token sequence, growing lazily with the iteration index.
    """

    __slots__ = ("workload", "_tokens", "_cache_ps", "_constant_checked", "_divergence")

    def __init__(self, workload: ExecutionTimeModel, tokens: "_TokenTable") -> None:
        self.workload = workload
        self._tokens = tokens
        self._cache_ps: List[int] = []
        #: iterations already verified to share the first duration.
        self._constant_checked = 0
        #: first iteration whose duration differs from iteration 0 (if found).
        self._divergence: Optional[int] = None

    def weight_ps(self, k: int, context: Mapping[str, object]) -> int:
        """Integer fast path used by the evaluator (see DependencyArc.weight_callable)."""
        cache = self._cache_ps
        while len(cache) <= k:
            index = len(cache)
            duration = self.workload.duration(index, self._tokens[index])
            # Same validation the arc's weight_ps applies to untrusted
            # callables, so a misbehaving workload stays an infeasibility
            # report instead of a silently wrong instant.
            if not isinstance(duration, Duration) or duration.is_negative():
                raise GraphError(
                    f"workload {type(self.workload).__name__} returned an invalid "
                    f"duration for iteration {index}: {duration!r}"
                )
            cache.append(duration.picoseconds)
        return cache[k]

    def __call__(self, k: int, context: Mapping[str, object]) -> Duration:
        return Duration(self.weight_ps(k, context))

    def stream_ps(self, horizon: int) -> List[int]:
        """The materialised duration list for iterations ``< horizon``.

        Fills the memoised cache (validating every duration exactly like
        :meth:`weight_ps`) and returns it -- the lowered arc then reads
        ``stream[k]`` with a plain list index instead of a function call.
        The list is shared: callers must not mutate it.
        """
        if horizon > 0:
            self.weight_ps(horizon - 1, {})
        return self._cache_ps

    def constant_stream_ps(self, horizon: int) -> Optional[int]:
        """The single duration all iterations ``< horizon`` share, or ``None``.

        This is the steady-state evaluator's exact decision procedure for
        "data-dependent durations": tokens may vary freely as long as the
        workload maps them all to the same duration.  The scan is memoised,
        so the per-problem cost is one pass over the table -- the same work
        the replay loop would spend evaluating the weights anyway.
        """
        if horizon <= 0:
            return None
        if self._divergence is not None and self._divergence < horizon:
            return None
        first = self.weight_ps(0, {})
        for k in range(max(self._constant_checked, 1), horizon):
            if self.weight_ps(k, {}) != first:
                self._divergence = k
                self._constant_checked = k + 1
                return None
        if horizon > self._constant_checked:
            self._constant_checked = horizon
        return first


class _TokenTable:
    """Lazy, memoised token sequence of the primary stimulus (or all-``None``)."""

    __slots__ = ("stimulus", "_tokens")

    def __init__(self, stimulus: Optional[Stimulus]) -> None:
        self.stimulus = stimulus
        self._tokens: List[Optional[DataToken]] = []

    def __getitem__(self, k: int) -> Optional[DataToken]:
        tokens = self._tokens
        while len(tokens) <= k:
            index = len(tokens)
            tokens.append(None if self.stimulus is None else self.stimulus.token(index))
        return tokens[k]


class LoweringUnsupported(Exception):
    """A specialised spec refused to lower to arrays (engine gate).

    ``reason`` is a short telemetry-friendly slug (e.g. ``dynamic_weight``);
    the caller falls back to the object-graph replay, which handles every
    weight protocol.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


#: One lowered dependency: (source node index, delay, per-iteration weight
#: stream).  The stream is always a materialised int list of length >= the
#: program horizon, so the replay loop indexes instead of calling.
Arc = Tuple[int, int, Sequence[int]]


class ArrayProgram:
    """One candidate's specialised model lowered onto flat integer tables.

    Everything the replay needs, with every name resolved to an index and
    every weight resolved to a per-iteration int stream:

    * ``plan_nodes[p]`` / ``plan_arcs[p]`` -- the computed (non-input) nodes
      in this candidate's topological order, each with its predecessor arcs;
    * ``plan_levels`` -- contiguous ``(start, stop)`` position ranges such
      that no position in a range depends (via a delay-0 arc) on another
      position in the same range; the plan is sorted so each level is one
      slice, letting a vectorised backend sweep a whole level per step;
    * ``inputs`` -- per boundary input, in protocol order: the relation, the
      exchange node's index, the stimulus offer schedule (ps per iteration)
      and the *delayed* arcs of the ready node (the ``peek_delayed`` set);
    * ``outputs`` -- per boundary output: the relation and offer node index;
    * ``observed`` -- (node name, index) pairs whose history rebuilds
      resource usage.

    The program is immutable once built and holds no references to the
    (mutable, shared) specialised graph, so many programs from successive
    delta-specialisations can coexist in one batch.
    """

    __slots__ = (
        "iterations",
        "node_count",
        "plan_nodes",
        "plan_arcs",
        "plan_levels",
        "inputs",
        "outputs",
        "observed",
    )

    def __init__(
        self,
        iterations: int,
        node_count: int,
        plan_nodes: List[int],
        plan_arcs: List[Tuple[Arc, ...]],
        plan_levels: Tuple[Tuple[int, int], ...],
        inputs: List[Tuple[str, int, List[int], Tuple[Arc, ...]]],
        outputs: List[Tuple[str, int]],
        observed: List[Tuple[str, int]],
    ) -> None:
        self.iterations = iterations
        self.node_count = node_count
        self.plan_nodes = plan_nodes
        self.plan_arcs = plan_arcs
        self.plan_levels = plan_levels
        self.inputs = inputs
        self.outputs = outputs
        self.observed = observed


#: replay result: (offer instants per input relation, output instants per
#: output relation, usage history per observed node with ε back as None).
ProgramResult = Tuple[
    Dict[str, List[int]], Dict[str, List[int]], Dict[str, List[Optional[int]]]
]


def numpy_available() -> bool:
    """Whether the optional numpy backend can be imported."""
    try:
        import numpy  # noqa: F401
    except Exception:
        return False
    return True


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve an explicit/None/``"auto"`` backend request to a concrete one.

    Precedence: explicit argument, then the ``REPRO_DSE_BACKEND``
    environment variable, then auto-detection (numpy when importable,
    else the pure-Python reference).  Raises
    :class:`~repro.errors.ModelError` for unknown names or when numpy is
    requested but not importable.
    """
    if backend in (None, "", "auto"):
        env = os.environ.get("REPRO_DSE_BACKEND", "").strip().lower()
        backend = env or None
    if backend in (None, "", "auto"):
        return "numpy" if numpy_available() else "python"
    if backend not in BACKENDS:
        raise ModelError(
            f"unknown DSE backend {backend!r}; expected one of {BACKENDS} (or 'auto')"
        )
    if backend == "numpy" and not numpy_available():
        raise ModelError("backend 'numpy' requested but numpy is not importable")
    return backend


def lower_spec(
    spec: Any,
    stimuli: Mapping[str, Stimulus],
    iterations: int,
    stream_cache: Optional[Dict[Any, Any]] = None,
) -> ArrayProgram:
    """Lower one specialised equivalent-model spec onto flat tables.

    ``stream_cache`` (optional, shared across a batch) memoises the
    candidate-independent lowering artefacts -- materialised constant
    streams, stimulus offer schedules and the node index map -- so a
    batch of candidates builds each of them once.  Raises
    :class:`LoweringUnsupported` when a weight cannot be materialised and
    :class:`~repro.errors.ComputationError`/:class:`~repro.errors.GraphError`
    exactly where the object-graph replay would (delay-0 ready arcs,
    invalid workload durations) so infeasibility reporting is unchanged.
    """
    graph = spec.graph
    # Same structural validation TDGEvaluator performs on construction.
    graph.validate()
    cache: Dict[Any, Any] = stream_cache if stream_cache is not None else {}

    def stream_of(arc: Any) -> Sequence[int]:
        if arc.is_constant:
            value = arc.constant_weight.picoseconds
            key = ("const", value, iterations)
            materialised = cache.get(key)
            if materialised is None:
                materialised = [value] * iterations
                cache[key] = materialised
            return materialised
        table = arc.weight_callable
        if not isinstance(table, _TabulatedWeight):
            raise LoweringUnsupported("dynamic_weight")
        return table.stream_ps(iterations)

    # The node vocabulary is delta-stable (specialisation swaps arcs, never
    # nodes), so successive candidates of one batch share the index map.
    index_key = ("index_of", id(graph))
    index_of = cache.get(index_key)
    if index_of is None:
        index_of = {node.name: node.index for node in graph.nodes}
        cache[index_key] = index_of
    plan_nodes: List[int] = []
    plan_arcs: List[Tuple[Arc, ...]] = []
    # Delay-0 depth of every plan node: positions sharing a level have no
    # same-iteration dependency on each other, so a vectorised backend can
    # sweep each level as one block.  Delay-0 arcs from input/exchange
    # nodes do not order plan positions (inputs resolve first each round).
    depth_of: Dict[int, int] = {}
    levels: List[int] = []
    for node in graph.topological_order():
        if node.is_input:
            continue
        plan_nodes.append(node.index)
        arcs = tuple(
            (arc.source.index, arc.delay, stream_of(arc))
            for arc in graph.arcs_into(node)
        )
        plan_arcs.append(arcs)
        depth = 0
        for src, delay, _ in arcs:
            if delay == 0:
                src_depth = depth_of.get(src)
                if src_depth is not None and src_depth >= depth:
                    depth = src_depth + 1
        depth_of[node.index] = depth
        levels.append(depth)
    # Stable-sort the plan by level: still a topological order (a delay-0
    # predecessor always has a strictly smaller level).
    order = sorted(range(len(plan_nodes)), key=levels.__getitem__)
    plan_nodes = [plan_nodes[p] for p in order]
    plan_arcs = [plan_arcs[p] for p in order]
    plan_levels: List[Tuple[int, int]] = []
    start = 0
    for position in range(1, len(order) + 1):
        if position == len(order) or levels[order[position]] != levels[order[start]]:
            plan_levels.append((start, position))
            start = position

    inputs: List[Tuple[str, int, List[int], Tuple[Arc, ...]]] = []
    for boundary in spec.boundary_inputs:
        ready_arcs: List[Arc] = []
        for arc in graph.arcs_into(boundary.ready_node):
            if arc.delay == 0:
                # Mirror of TDGEvaluator.peek_delayed's contract.
                raise ComputationError(
                    f"peek_delayed({boundary.ready_node!r}) requires delayed arcs "
                    f"only, but the arc from {arc.source.name!r} has delay 0"
                )
            ready_arcs.append((arc.source.index, arc.delay, stream_of(arc)))
        stimulus = stimuli[boundary.relation]
        schedule_key = ("schedule", boundary.relation, id(stimulus), iterations)
        schedule = cache.get(schedule_key)
        if schedule is None:
            schedule = [stimulus.offer_time(k).picoseconds for k in range(iterations)]
            cache[schedule_key] = schedule
        inputs.append(
            (boundary.relation, index_of[boundary.exchange_node], schedule, tuple(ready_arcs))
        )

    outputs = [(b.relation, index_of[b.offer_node]) for b in spec.boundary_outputs]
    observed = [(name, index_of[name]) for name in spec.observation_nodes()]
    return ArrayProgram(
        iterations=iterations,
        node_count=graph.node_count,
        plan_nodes=plan_nodes,
        plan_arcs=plan_arcs,
        plan_levels=tuple(plan_levels),
        inputs=inputs,
        outputs=outputs,
        observed=observed,
    )


def replay_program(program: ArrayProgram) -> Optional[ProgramResult]:
    """Replay one lowered program with the pure-Python reference loop.

    Bit-identical to :meth:`CompiledProblem._run` over the object graph:
    the same Reception/rendezvous protocol, the same (max, +) sweep, the
    same monotonic-output check (``None`` means "needs the event-driven
    harness", exactly when the object path would say so).
    """
    iterations = program.iterations
    neg = NEG_EPSILON
    eps = EPSILON_THRESHOLD
    hist: List[List[int]] = [[neg] * iterations for _ in range(program.node_count)]
    inputs = program.inputs
    offer_lists: List[List[int]] = [[] for _ in inputs]
    out_lists: List[List[int]] = [[] for _ in program.outputs]
    prev = [neg] * len(inputs)  # previous exchange instants (ε = neg)
    # Bind history rows into the tables once, so the hot loop below works
    # on list references instead of re-indexing the vocabulary per visit.
    plan = [
        (
            hist[node_idx],
            tuple((hist[src], delay, weights) for src, delay, weights in arcs),
        )
        for node_idx, arcs in zip(program.plan_nodes, program.plan_arcs)
    ]
    bound_inputs = [
        (
            i,
            hist[exchange_idx],
            schedule,
            tuple((hist[src], delay, weights) for src, delay, weights in ready_arcs),
        )
        for i, (_, exchange_idx, schedule, ready_arcs) in enumerate(inputs)
    ]
    bound_outputs = [
        (hist[offer_idx], out_lists[out_i])
        for out_i, (_, offer_idx) in enumerate(program.outputs)
    ]
    now = 0  # the Reception process's local clock, persistent across iterations
    for k in range(iterations):
        for i, exchange_row, schedule, ready_arcs in bound_inputs:
            # Reception: wait until the abstracted consumer is ready
            # (peek_delayed over the ready node's delayed arcs).
            ready = neg
            for source_row, delay, weights in ready_arcs:
                j = k - delay
                if j >= 0:
                    value = source_row[j]
                    if value > eps:
                        candidate = value + weights[k]
                        if candidate > ready:
                            ready = candidate
            if ready > now:
                now = ready
            # Stimulus driver: resumes after its previous exchange, then
            # waits for the scheduled offer time; u(k) is the later one.
            scheduled = schedule[k]
            previous = prev[i]
            arrival = previous if previous > scheduled else scheduled
            offer_lists[i].append(arrival)
            # Rendezvous: the exchange completes when both sides arrived.
            if arrival > now:
                now = arrival
            exchange_row[k] = now
            prev[i] = now
        # ComputeInstant(): the (max, +) sweep in topological order.
        for node_row, arcs in plan:
            best = neg
            for source_row, delay, weights in arcs:
                j = k - delay
                if j >= 0:
                    value = source_row[j]
                    if value > eps:
                        candidate = value + weights[k]
                        if candidate > best:
                            best = candidate
            node_row[k] = best
        for offer_row, emitted in bound_outputs:
            offered = offer_row[k]
            if offered <= eps or (emitted and offered < emitted[-1]):
                return None
            # Always-ready observer: the exchange happens at the offer.
            emitted.append(offered)
    offers = {relation: offer_lists[i] for i, (relation, _, _, _) in enumerate(inputs)}
    actual = {relation: out_lists[i] for i, (relation, _) in enumerate(program.outputs)}
    usage = {
        name: [value if value > eps else None for value in hist[idx]]
        for name, idx in program.observed
    }
    return offers, actual, usage

def replay_batch(
    programs: Sequence[ArrayProgram], backend: str = "python"
) -> List[Optional[ProgramResult]]:
    """Replay a batch of lowered programs on the selected backend.

    Results align with ``programs``; an entry is ``None`` exactly when the
    reference replay would fall back to the event-driven harness for that
    candidate.  The numpy backend vectorises the per-step max/+ reduction
    across *all* candidates at once: because every arc resolves to a flat
    index into one shared history buffer, candidates' plan structures may
    differ freely (order arcs come and go with the allocation) and still
    sweep together -- only the horizon and the boundary-input protocol
    must match, so candidates are grouped by those alone.
    """
    programs = list(programs)
    telemetry.count("dse.engine.batches")
    telemetry.gauge("dse.engine.batch_size", len(programs))
    telemetry.count(f"dse.engine.backend.{backend}", len(programs))
    if backend != "numpy":
        return [replay_program(program) for program in programs]
    results: List[Optional[ProgramResult]] = [None] * len(programs)
    groups: Dict[Any, List[int]] = {}
    for position, program in enumerate(programs):
        signature = (
            program.iterations,
            tuple(relation for relation, _, _, _ in program.inputs),
        )
        groups.setdefault(signature, []).append(position)
    for positions in groups.values():
        swept = _replay_sweep_numpy([programs[p] for p in positions])
        for position, result in zip(positions, swept):
            results[position] = result
    return results


def _replay_sweep_numpy(programs: List[ArrayProgram]) -> List[Optional[ProgramResult]]:
    """One vectorised sweep over candidates sharing a horizon.

    Strategy: concatenate level ``l`` of *every* candidate's plan into one
    row block whose arcs are flat indices into one guard-padded history
    buffer, so one step of one topological level is four whole-array ops
    (gather, add, max, scatter) over every candidate at once -- the per-
    iteration Python overhead is independent of the batch size.  Two
    layout tricks remove the validity masks the reference loop needs:

    * every node row is prefixed with ``pad`` guard cells (``pad`` >= the
      largest arc delay) that stay at ε forever, so a delayed read before
      its first valid iteration lands on ε instead of wrapping into a
      neighbouring row; one extra all-ε row absorbs the arc-count padding;
    * ε is *not* re-masked after the add: with non-negative weights an
      ε-region value can only drift up by the total weight along a path,
      which the headroom check below proves stays under the ε threshold
      (otherwise the batch falls back to the reference loop, preserving
      masked semantics for adversarial weights).

    Candidates advance in lockstep through ``(iteration, level)`` space;
    their instants never interact, so failed candidates (ε or
    non-monotonic outputs) are detected post-hoc on their output rows --
    equivalent to the reference's early exit.
    """
    import numpy as np

    first = programs[0]
    iterations = first.iterations
    n_candidates = len(programs)
    n_inputs = len(first.inputs)
    neg = NEG_EPSILON
    eps = EPSILON_THRESHOLD

    # -- weight-stream matrix: one row per distinct materialised stream ---
    stream_arrays: List[Any] = [np.zeros(iterations, dtype=np.int64)]  # row 0 pads
    stream_ids: Dict[int, int] = {}

    def stream_row(weights: Sequence[int]) -> int:
        key = id(weights)
        row = stream_ids.get(key)
        if row is None:
            row = len(stream_arrays)
            stream_arrays.append(np.asarray(weights[:iterations], dtype=np.int64))
            stream_ids[key] = row
        return row

    # -- guard padding and per-candidate row bases ------------------------
    pad = 1
    max_arcs = 1
    max_ready = 0
    n_levels = 0
    for program in programs:
        if len(program.plan_levels) > n_levels:
            n_levels = len(program.plan_levels)
        for arcs in program.plan_arcs:
            if len(arcs) > max_arcs:
                max_arcs = len(arcs)
            for _, delay, _ in arcs:
                if delay > pad:
                    pad = delay
        for entry in program.inputs:
            if len(entry[3]) > max_ready:
                max_ready = len(entry[3])
            for _, delay, _ in entry[3]:
                if delay > pad:
                    pad = delay
    span = pad + iterations
    bases: List[int] = []
    rows_total = 0
    for program in programs:
        bases.append(rows_total)
        rows_total += program.node_count
    pad_cell = rows_total * span + pad  # in the extra all-ε guard row

    # -- level-concatenated plan tables -----------------------------------
    level_tables: List[Tuple[Any, Any, Any]] = []
    for level in range(n_levels):
        plan_rows: List[int] = []
        arc_rows: List[List[int]] = []
        stream_rows: List[List[int]] = []
        for c, program in enumerate(programs):
            if level >= len(program.plan_levels):
                continue
            start, stop = program.plan_levels[level]
            base = bases[c]
            for p in range(start, stop):
                plan_rows.append((base + program.plan_nodes[p]) * span + pad)
                row = [pad_cell] * max_arcs
                srow = [0] * max_arcs
                for a, (src, delay, weights) in enumerate(program.plan_arcs[p]):
                    row[a] = (base + src) * span + pad - delay
                    srow[a] = stream_row(weights)
                arc_rows.append(row)
                stream_rows.append(srow)
        level_tables.append(
            (
                np.asarray(plan_rows, dtype=np.intp),
                np.asarray(arc_rows, dtype=np.intp).reshape(len(arc_rows), max_arcs),
                np.asarray(stream_rows, dtype=np.intp).reshape(
                    len(stream_rows), max_arcs
                ),
            )
        )

    # -- boundary-input tables --------------------------------------------
    ready_span = max(max_ready, 1)
    exchange_idx = np.empty((n_inputs, n_candidates), dtype=np.intp)
    ready_idx = np.full((n_inputs, n_candidates, ready_span), pad_cell, dtype=np.intp)
    ready_streams = np.zeros((n_inputs, n_candidates, ready_span), dtype=np.intp)
    for c, program in enumerate(programs):
        base = bases[c]
        for i, (_, exch, _, ready_arcs) in enumerate(program.inputs):
            exchange_idx[i, c] = (base + exch) * span + pad
            for a, (src, delay, weights) in enumerate(ready_arcs):
                ready_idx[i, c, a] = (base + src) * span + pad - delay
                ready_streams[i, c, a] = stream_row(weights)
    scheds: List[Any] = []
    for i in range(n_inputs):
        schedule = first.inputs[i][2]
        if all(program.inputs[i][2] is schedule for program in programs):
            scheds.append(np.asarray(schedule[:iterations], dtype=np.int64))  # [K]
        else:
            table = np.empty((iterations, n_candidates), dtype=np.int64)
            for c, program in enumerate(programs):
                table[:, c] = program.inputs[i][2][:iterations]
            scheds.append(table)  # [K, C]

    streams = (
        np.vstack(stream_arrays)
        if iterations
        else np.zeros((len(stream_arrays), 0), dtype=np.int64)
    )
    # Mask-free ε semantics need non-negative weights with enough headroom
    # that an ε value drifting up by one weight per hop can never cross
    # the ε threshold.  Real duration tables sit many orders of magnitude
    # below the bound; fall back to the masked reference loop otherwise.
    if streams.size:
        max_positions = max(len(program.plan_nodes) for program in programs)
        max_hops = iterations * (max_positions + n_inputs) + 1
        if int(streams.min()) < 0 or int(streams.max()) * max_hops >= eps - neg:
            return [replay_program(program) for program in programs]

    # -- the sweep --------------------------------------------------------
    # Read/write indices advance by one cell per iteration, so each table
    # keeps a working copy that is incremented in place; gather/add/max
    # reuse preallocated buffers to keep the hot loop allocation-free.
    plan_state = [
        (
            plan_rows.copy(),
            arc_rows.copy(),
            streams[stream_rows],  # [rows, arcs, K] pre-gathered weights
            np.empty(arc_rows.shape, dtype=np.int64),
            np.empty(len(plan_rows), dtype=np.int64),
        )
        for plan_rows, arc_rows, stream_rows in level_tables
    ]
    ready_state = [
        (
            ready_idx[i].copy(),
            streams[ready_streams[i]],
            np.empty((n_candidates, ready_span), dtype=np.int64),
            np.empty(n_candidates, dtype=np.int64),
        )
        for i in range(n_inputs)
    ]
    exch_state = exchange_idx.copy()
    hist_flat = np.full((rows_total + 1) * span, neg, dtype=np.int64)
    now = np.zeros(n_candidates, dtype=np.int64)
    prev = np.full((n_candidates, n_inputs), neg, dtype=np.int64)
    offer_hist = np.zeros((n_candidates, n_inputs, iterations), dtype=np.int64)
    for k in range(iterations):
        for i in range(n_inputs):
            if max_ready:
                ridx, rweights, rval, rbest = ready_state[i]
                hist_flat.take(ridx, out=rval)
                np.add(rval, rweights[:, :, k], out=rval)
                rval.max(axis=1, out=rbest)
                np.maximum(now, rbest, out=now)
                ridx += 1
            arrival = np.maximum(prev[:, i], scheds[i][k])
            offer_hist[:, i, k] = arrival
            np.maximum(now, arrival, out=now)
            hist_flat[exch_state[i]] = now
            prev[:, i] = now
        exch_state += 1
        for plan_idx, arc_idx, weights_lk, val_buf, best_buf in plan_state:
            hist_flat.take(arc_idx, out=val_buf)
            np.add(val_buf, weights_lk[:, :, k], out=val_buf)
            val_buf.max(axis=1, out=best_buf)
            hist_flat[plan_idx] = best_buf
            arc_idx += 1
            plan_idx += 1

    # -- unpack per candidate (post-hoc monotonic/ε check) ----------------
    hist_rows = hist_flat[: rows_total * span].reshape(rows_total, span)
    results: List[Optional[ProgramResult]] = []
    for c, program in enumerate(programs):
        base = bases[c]
        failed = False
        actual: Dict[str, List[int]] = {}
        for relation, offer_idx in program.outputs:
            sequence = hist_rows[base + offer_idx, pad:]
            if iterations and (
                bool((sequence <= eps).any()) or bool((np.diff(sequence) < 0).any())
            ):
                failed = True
                break
            actual[relation] = sequence.tolist()
        if failed:
            results.append(None)
            continue
        offers = {
            relation: offer_hist[c, i, :].tolist()
            for i, (relation, _, _, _) in enumerate(program.inputs)
        }
        usage: Dict[str, List[Optional[int]]] = {}
        for name, idx in program.observed:
            row = hist_rows[base + idx, pad:]
            values = row.tolist()
            if bool((row <= eps).any()):
                keep = (row > eps).tolist()
                values = [v if f else None for v, f in zip(values, keep)]
            usage[name] = values
        results.append((offers, actual, usage))
    return results
