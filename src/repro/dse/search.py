"""Search strategies over the mapping design space.

Strategies are *batch* proposers: each round they propose a list of
candidates, the explorer evaluates the batch (possibly across worker
processes, possibly served from the result store, possibly as one
compiled array sweep over the whole generation -- see
:mod:`repro.dse.engine`) and feeds the scored **objective vectors**
back through :meth:`SearchStrategy.observe` in a single
generation-batched call.  This
shape keeps every strategy trivially parallelisable and -- because
proposals depend only on the seeded RNG and on previously observed
vectors, never on wall-clock time -- deterministic under a fixed seed.

Three API properties shape everything here:

* **multi-objective feedback**: strategies observe
  :class:`Observation` values -- ``(candidate, objective vector,
  feasible)`` -- projected through the explorer's
  :class:`~repro.dse.pareto.Objective` tuple.  No strategy reads metric
  dicts or hard-codes metric keys; a strategy that needs a scalar applies
  a pluggable :class:`Scalarization` policy (weighted sum or
  epsilon-constraint) to the vector;
* **checkpointable state**: every strategy implements
  :meth:`SearchStrategy.state` / :meth:`SearchStrategy.restore` with
  JSON-safe payloads (RNG state, current point, temperature, population,
  enumeration cursor), so an exploration interrupted at a round boundary
  resumes bit-identically (see :mod:`repro.dse.checkpoint`);
* **population search**: :class:`NsgaSearch` runs an NSGA-II-style loop
  (non-dominated sorting + crowding-distance selection, allocation/order
  crossover via :meth:`~repro.dse.space.DesignSpace.crossover`, mutation
  via :meth:`~repro.dse.space.DesignSpace.mutate`) that explores the
  whole front instead of a single trade-off ray.

Shipped strategies:

* :class:`ExhaustiveSearch` -- walk the whole space in enumeration order
  (small spaces, ground truth for the others);
* :class:`RandomSearch` -- seeded uniform sampling;
* :class:`AnnealingSearch` -- greedy local search with simulated-annealing
  acceptance over the scalarised objective vector;
* :class:`NsgaSearch` -- NSGA-II-style population search.
"""

from __future__ import annotations

import inspect
import math
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Type, Union

from .. import telemetry
from ..errors import ModelError
from .pareto import DEFAULT_OBJECTIVES, Objective, crowding_distance, nondominated_rank
from .space import DesignSpace, MappingCandidate

__all__ = [
    "Observation",
    "Scalarization",
    "WeightedSum",
    "EpsilonConstraint",
    "make_scalarization",
    "SearchStrategy",
    "ExhaustiveSearch",
    "RandomSearch",
    "AnnealingSearch",
    "NsgaSearch",
    "make_strategy",
    "strategy_options",
    "STRATEGY_NAMES",
]


@dataclass(frozen=True)
class Observation:
    """One scored candidate as a strategy sees it: an objective vector.

    ``vector`` holds the candidate's objective values (minimised, one per
    explorer objective, ``inf`` for a missing metric); ``feasible`` is the
    evaluator's verdict.  Strategies never see the underlying metrics dict.
    """

    candidate: MappingCandidate
    vector: Tuple[float, ...]
    feasible: bool = True


# ----------------------------------------------------------------------
# scalarisation policies
# ----------------------------------------------------------------------
class Scalarization:
    """Reduce an objective vector to one minimised scalar (inf = rejected)."""

    policy = "base"

    def __call__(self, vector: Sequence[float], feasible: bool = True) -> float:
        raise NotImplementedError

    def spec(self) -> Dict[str, Any]:
        """JSON-safe description, re-instantiable via :func:`make_scalarization`."""
        raise NotImplementedError


class WeightedSum(Scalarization):
    """``sum(w_i * v_i)`` -- the classic fixed trade-off ray.

    ``weights=None`` means unit weights over however many objectives the
    vector carries.  Infeasible vectors scalarise to ``inf``.
    """

    policy = "weighted-sum"

    def __init__(self, weights: Optional[Sequence[float]] = None) -> None:
        self.weights = tuple(float(weight) for weight in weights) if weights is not None else None

    def __call__(self, vector: Sequence[float], feasible: bool = True) -> float:
        if not feasible:
            return math.inf
        weights = self.weights
        if weights is None:
            weights = (1.0,) * len(vector)
        if len(weights) != len(vector):
            raise ModelError(
                f"weighted-sum scalarisation has {len(weights)} weight(s) for a "
                f"{len(vector)}-objective vector"
            )
        return sum(weight * value for weight, value in zip(weights, vector))

    def spec(self) -> Dict[str, Any]:
        return {
            "policy": self.policy,
            "weights": list(self.weights) if self.weights is not None else None,
        }


class EpsilonConstraint(Scalarization):
    """Minimise one primary objective subject to bounds on the others.

    ``bounds`` maps objective indices to upper bounds; a vector exceeding any
    bound (or infeasible) scalarises to ``inf``.  This walks the front by
    *constraint*, complementing the weighted sum's walk by *slope* -- the two
    standard scalarisation families of multi-objective optimisation.
    """

    policy = "epsilon-constraint"

    def __init__(
        self, primary: int = 0, bounds: Optional[Mapping[Union[int, str], float]] = None
    ) -> None:
        self.primary = int(primary)
        # JSON object keys arrive as strings; accept both spellings.
        self.bounds = {int(index): float(bound) for index, bound in (bounds or {}).items()}

    def __call__(self, vector: Sequence[float], feasible: bool = True) -> float:
        if not feasible:
            return math.inf
        if not 0 <= self.primary < len(vector):
            raise ModelError(
                f"epsilon-constraint primary objective {self.primary} is out of range "
                f"for a {len(vector)}-objective vector"
            )
        for index, bound in self.bounds.items():
            if index == self.primary:
                continue
            if not 0 <= index < len(vector):
                raise ModelError(
                    f"epsilon-constraint bound on objective {index} is out of range "
                    f"for a {len(vector)}-objective vector"
                )
            if vector[index] > bound:
                return math.inf
        return float(vector[self.primary])

    def spec(self) -> Dict[str, Any]:
        return {
            "policy": self.policy,
            "primary": self.primary,
            "bounds": {str(index): bound for index, bound in self.bounds.items()},
        }


_SCALARIZATIONS: Dict[str, Type[Scalarization]] = {
    WeightedSum.policy: WeightedSum,
    EpsilonConstraint.policy: EpsilonConstraint,
}


def make_scalarization(
    spec: Union[None, str, Mapping[str, Any], Scalarization]
) -> Scalarization:
    """Instantiate a scalarisation policy from a JSON-safe spec.

    Accepts an instance (returned as-is), a policy name (default options), or
    a dict ``{"policy": name, ...options}`` -- the shape carried in strategy
    options and checkpoints.  ``None`` means unit-weight :class:`WeightedSum`.
    """
    if spec is None:
        return WeightedSum()
    if isinstance(spec, Scalarization):
        return spec
    if isinstance(spec, str):
        name, options = spec, {}
    else:
        options = dict(spec)
        name = options.pop("policy", None)
        if name is None:
            raise ModelError("a scalarisation spec dict needs a 'policy' key")
    try:
        cls = _SCALARIZATIONS[name]
    except KeyError:
        known = ", ".join(sorted(_SCALARIZATIONS))
        raise ModelError(
            f"unknown scalarisation policy {name!r}; known policies: {known}"
        ) from None
    try:
        return cls(**options)
    except (TypeError, ValueError) as error:
        # TypeError: unknown option names; ValueError: malformed values (e.g.
        # a non-numeric weight or a non-integer objective index).
        raise ModelError(f"invalid options for scalarisation {name!r}: {error}") from None


# ----------------------------------------------------------------------
# JSON-safe state helpers
# ----------------------------------------------------------------------
def _rng_state(rng: random.Random) -> List[Any]:
    version, internal, gauss_next = rng.getstate()
    return [version, list(internal), gauss_next]


def _restore_rng(rng: random.Random, state: Sequence[Any]) -> None:
    try:
        version, internal, gauss_next = state
        rng.setstate((version, tuple(internal), gauss_next))
    except (TypeError, ValueError) as error:
        raise ModelError(f"corrupt RNG state in strategy checkpoint: {error}") from None


def _candidate_state(candidate: Optional[MappingCandidate]) -> Optional[Dict[str, Any]]:
    return None if candidate is None else candidate.to_parameters()


def _candidate_from_state(state: Optional[Mapping[str, Any]]) -> Optional[MappingCandidate]:
    return None if state is None else MappingCandidate.from_parameters(state)


def _score_state(score: float) -> Optional[float]:
    # math.inf round-trips through python's json, but stays out of the strict
    # JSON grammar; None is the portable spelling of "no score yet".
    return None if math.isinf(score) else score


def _score_from_state(state: Optional[float]) -> float:
    return math.inf if state is None else float(state)


class SearchStrategy:
    """Base class: propose a batch, observe its objective vectors, repeat.

    Every strategy is constructed from ``(space, objectives, seed, options)``
    and must round-trip through :meth:`state` / :meth:`restore`: restoring the
    state captured at a round boundary into a freshly constructed strategy
    (same constructor arguments) continues the identical proposal stream.
    """

    name = "base"

    def __init__(
        self, space: DesignSpace, objectives: Sequence[Objective] = DEFAULT_OBJECTIVES
    ) -> None:
        self.space = space
        self.objectives = tuple(objectives)

    def propose(self, budget_left: int) -> List[MappingCandidate]:
        """The next batch of candidates (may repeat already-seen ones)."""
        raise NotImplementedError

    def observe(self, observations: Sequence[Observation]) -> None:
        """Feed back the objective vectors of the batch just proposed.

        Observations arrive *generation-batched*: the explorer scores one
        whole proposal batch (one compiled array sweep when the batch
        engine applies, see :mod:`repro.dse.engine`) and feeds the vectors
        back in a single call.  The base implementation records that batch
        shape -- ``dse.search.<name>.observed`` and the
        ``dse.search.generation_size`` gauge -- so overriding strategies
        must call ``super().observe(observations)`` first.
        """
        telemetry.count(f"dse.search.{self.name}.observed", len(observations))
        telemetry.gauge("dse.search.generation_size", len(observations))

    def _count_proposals(self, batch: Sequence[MappingCandidate]) -> None:
        """Per-strategy proposal telemetry (called by each ``propose``)."""
        telemetry.count(f"dse.search.{self.name}.proposals", len(batch))

    @property
    def exhausted(self) -> bool:
        """True when the strategy has nothing left to propose."""
        return False

    # -- checkpointing -----------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """JSON-safe snapshot of everything :meth:`restore` needs."""
        return {"strategy": self.name}

    def restore(self, state: Mapping[str, Any]) -> None:
        """Restore a :meth:`state` snapshot (constructor arguments must match)."""
        self._check_state(state)

    def _check_state(self, state: Mapping[str, Any]) -> None:
        found = state.get("strategy")
        if found != self.name:
            raise ModelError(
                f"checkpointed strategy state is for {found!r}, not {self.name!r}"
            )


class ExhaustiveSearch(SearchStrategy):
    """Enumerate every candidate of the space, in deterministic order."""

    name = "exhaustive"

    def __init__(
        self,
        space: DesignSpace,
        objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
        batch_size: int = 32,
    ) -> None:
        super().__init__(space, objectives)
        self.batch_size = batch_size
        self._iterator = space.enumerate_candidates()
        self._cursor = 0
        self._exhausted = False

    def propose(self, budget_left: int) -> List[MappingCandidate]:
        batch: List[MappingCandidate] = []
        want = min(self.batch_size, budget_left)
        while len(batch) < want:
            try:
                batch.append(next(self._iterator))
            except StopIteration:
                self._exhausted = True
                break
            self._cursor += 1
        self._count_proposals(batch)
        return batch

    @property
    def exhausted(self) -> bool:
        return self._exhausted

    def state(self) -> Dict[str, Any]:
        return {"strategy": self.name, "cursor": self._cursor, "exhausted": self._exhausted}

    def restore(self, state: Mapping[str, Any]) -> None:
        self._check_state(state)
        cursor = int(state["cursor"])
        self._iterator = self.space.enumerate_candidates()
        self._cursor = 0
        self._exhausted = bool(state["exhausted"])
        # Enumeration order is deterministic: replaying the cursor restores the
        # exact position without persisting any candidate.
        for _ in range(cursor):
            try:
                next(self._iterator)
            except StopIteration:
                self._exhausted = True
                break
            self._cursor += 1
        if self._cursor != cursor:
            raise ModelError(
                f"exhaustive cursor {cursor} exceeds the space "
                f"({self._cursor} candidates); the checkpoint belongs to a "
                "different problem or parameters"
            )


class RandomSearch(SearchStrategy):
    """Seeded uniform sampling of the space."""

    name = "random"

    def __init__(
        self,
        space: DesignSpace,
        objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
        seed: int = 0,
        batch_size: int = 32,
    ) -> None:
        super().__init__(space, objectives)
        self.batch_size = batch_size
        self._rng = random.Random(seed)

    def propose(self, budget_left: int) -> List[MappingCandidate]:
        want = min(self.batch_size, budget_left)
        batch = [self.space.random_candidate(self._rng) for _ in range(want)]
        self._count_proposals(batch)
        return batch

    def state(self) -> Dict[str, Any]:
        return {"strategy": self.name, "rng": _rng_state(self._rng)}

    def restore(self, state: Mapping[str, Any]) -> None:
        self._check_state(state)
        _restore_rng(self._rng, state["rng"])


#: The historical annealing trade-off ray for the default (latency_ps,
#: resources_used) objectives: 100 us of latency per extra resource.
DEFAULT_ANNEALING_WEIGHTS: Tuple[float, ...] = (1.0, 100_000_000.0)


class AnnealingSearch(SearchStrategy):
    """Local search with simulated-annealing acceptance.

    Each round proposes ``neighbors_per_round`` single-move neighbours of the
    current candidate.  The minimised scalar is the observed objective vector
    reduced by the ``scalarization`` policy (infeasible candidates score
    infinite); the best neighbour is accepted when it improves, or with the
    Metropolis probability ``exp(-delta / temperature)`` otherwise, and the
    temperature decays geometrically every round.

    With the default objectives and no explicit policy the scalar reproduces
    the historical ``latency + 100 us x resources`` ray
    (:data:`DEFAULT_ANNEALING_WEIGHTS`) and ``initial_temperature_us`` is
    converted to the ray's picosecond score scale; pass ``scalarization=`` a
    :class:`Scalarization`, a policy name or a JSON-safe spec dict (e.g.
    ``{"policy": "epsilon-constraint", "primary": 0, "bounds": {"1": 2}}``)
    to explore a different slice of the front -- a custom policy (or custom
    objectives) defines its own score scale, so ``initial_temperature_us`` is
    then used directly in score units (the conservative default of 200 makes
    the walk near-greedy for large-valued scores; raise it to anneal).
    """

    name = "annealing"

    def __init__(
        self,
        space: DesignSpace,
        objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
        seed: int = 0,
        neighbors_per_round: int = 8,
        scalarization: Union[None, str, Mapping[str, Any], Scalarization] = None,
        initial_temperature_us: float = 200.0,
        cooling: float = 0.9,
    ) -> None:
        super().__init__(space, objectives)
        # The historical ray only makes sense for the objectives it was tuned
        # for -- matching on identity, not arity, keeps e.g. a custom
        # (latency, utilization) pair from being scaled by 1e8.
        default_ray = scalarization is None and self.objectives == DEFAULT_OBJECTIVES
        if default_ray:
            scalarization = WeightedSum(DEFAULT_ANNEALING_WEIGHTS)
        self.scalarization = make_scalarization(scalarization)
        # Probe once with a zero vector so mis-sized weights or out-of-range
        # constraint indices fail here, not after the first evaluated batch.
        self.scalarization(tuple(0.0 for _ in self.objectives), True)
        self._rng = random.Random(seed)
        self.neighbors_per_round = neighbors_per_round
        # Temperatures are in scalarised-score units.  The default ray is
        # picosecond-valued, hence the microsecond-to-ps conversion; a custom
        # scalarisation (or custom objectives) defines its own score scale, so
        # the caller's value is used directly there.
        self.temperature = initial_temperature_us * 1e6 if default_ray else initial_temperature_us
        self.cooling = cooling
        self._current: Optional[MappingCandidate] = None
        self._current_score = math.inf

    def scalarize(self, observation: Observation) -> float:
        """Scalarised cost of one observation (lower is better, infeasible = inf)."""
        return self.scalarization(observation.vector, observation.feasible)

    def propose(self, budget_left: int) -> List[MappingCandidate]:
        if self._current is None:
            # Seed the walk with the default candidate plus random restarts.
            batch = [self.space.default_candidate()]
            while len(batch) < min(self.neighbors_per_round, budget_left):
                batch.append(self.space.random_candidate(self._rng))
        else:
            batch = self.space.neighbors(
                self._current, self._rng, min(self.neighbors_per_round, budget_left)
            )
        self._count_proposals(batch)
        return batch

    def observe(self, observations: Sequence[Observation]) -> None:
        super().observe(observations)
        best: Optional[Tuple[MappingCandidate, float]] = None
        for observation in observations:
            value = self.scalarize(observation)
            if best is None or value < best[1]:
                best = (observation.candidate, value)
        # math.isinf, not an identity check: an infinity *computed* from the
        # vector (e.g. float("inf") latency) is not the math.inf singleton,
        # and an all-infeasible round must never become the current point.
        if best is None or math.isinf(best[1]):
            telemetry.count("dse.search.annealing.dead_rounds")
            self.temperature *= self.cooling
            return
        candidate, value = best
        if value <= self._current_score:
            self._current, self._current_score = candidate, value
            telemetry.count("dse.search.annealing.accepted")
        else:
            delta = value - self._current_score
            if self.temperature > 0 and self._rng.random() < math.exp(
                -delta / self.temperature
            ):
                self._current, self._current_score = candidate, value
                telemetry.count("dse.search.annealing.uphill_accepted")
            else:
                telemetry.count("dse.search.annealing.rejected")
        self.temperature *= self.cooling

    def state(self) -> Dict[str, Any]:
        return {
            "strategy": self.name,
            "rng": _rng_state(self._rng),
            "temperature": self.temperature,
            "current": _candidate_state(self._current),
            "current_score": _score_state(self._current_score),
            "scalarization": self.scalarization.spec(),
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        self._check_state(state)
        _restore_rng(self._rng, state["rng"])
        self.temperature = float(state["temperature"])
        self._current = _candidate_from_state(state["current"])
        self._current_score = _score_from_state(state["current_score"])
        self.scalarization = make_scalarization(state.get("scalarization"))


class NsgaSearch(SearchStrategy):
    """NSGA-II-style population search over the objective vectors.

    The first round seeds the population with the default candidate plus
    random samples.  Every later round breeds ``population_size`` offspring by
    binary tournament on ``(non-domination rank, crowding distance)``,
    allocation/order crossover (:meth:`~repro.dse.space.DesignSpace.crossover`)
    and mutation (:meth:`~repro.dse.space.DesignSpace.mutate`); observed
    feasible candidates merge into the population, which is truncated back to
    ``population_size`` by non-dominated sorting with crowding-distance
    tie-breaking on the boundary front -- the environmental selection of
    NSGA-II.  The population approximates the whole Pareto front instead of
    following one scalarised ray.
    """

    name = "nsga2"

    def __init__(
        self,
        space: DesignSpace,
        objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
        seed: int = 0,
        population_size: int = 16,
        crossover_rate: float = 0.9,
        mutation_rate: float = 0.3,
    ) -> None:
        super().__init__(space, objectives)
        if population_size < 2:
            raise ModelError("nsga2 needs a population of at least two candidates")
        self._rng = random.Random(seed)
        self.population_size = population_size
        self.crossover_rate = crossover_rate
        self.mutation_rate = mutation_rate
        #: Evaluated survivors: ``(candidate, objective vector)`` pairs.
        self._population: List[Tuple[MappingCandidate, Tuple[float, ...]]] = []
        self._generation = 0

    # -- selection machinery -----------------------------------------------------
    @staticmethod
    def _fronts(vectors: Sequence[Tuple[float, ...]]) -> Dict[int, List[int]]:
        """Member indices grouped by non-domination rank, ranks ascending."""
        members_by_rank: Dict[int, List[int]] = {}
        for index, rank in enumerate(nondominated_rank(vectors)):
            members_by_rank.setdefault(rank, []).append(index)
        return {rank: members_by_rank[rank] for rank in sorted(members_by_rank)}

    def _ranked(self) -> Tuple[List[int], List[float]]:
        """Per-member (non-domination rank, within-front crowding distance)."""
        vectors = [vector for _, vector in self._population]
        ranks = [0] * len(vectors)
        crowding = [0.0] * len(vectors)
        for rank, members in self._fronts(vectors).items():
            for index, distance in zip(
                members, crowding_distance([vectors[i] for i in members])
            ):
                ranks[index] = rank
                crowding[index] = distance
        return ranks, crowding

    def _tournament(self, ranks: List[int], crowding: List[float]) -> int:
        first = self._rng.randrange(len(self._population))
        second = self._rng.randrange(len(self._population))
        if (ranks[first], -crowding[first]) <= (ranks[second], -crowding[second]):
            return first
        return second

    def propose(self, budget_left: int) -> List[MappingCandidate]:
        want = min(self.population_size, budget_left)
        if not self._population:
            batch = [self.space.default_candidate()]
            while len(batch) < want:
                batch.append(self.space.random_candidate(self._rng))
            batch = batch[:want]
            self._count_proposals(batch)
            return batch
        ranks, crowding = self._ranked()
        known = {candidate.digest() for candidate, _ in self._population}
        batch: List[MappingCandidate] = []
        for _ in range(want):
            child: Optional[MappingCandidate] = None
            # Converged populations breed mostly duplicates; retry a few times
            # and fall back to a random immigrant so the budget keeps buying
            # novel candidates instead of stalling the exploration.
            for _attempt in range(4):
                trial = self._breed(ranks, crowding)
                if trial.digest() not in known:
                    child = trial
                    break
            if child is None:
                telemetry.count("dse.search.nsga2.immigrants")
                child = self.space.random_candidate(self._rng)
            known.add(child.digest())
            batch.append(child)
        self._count_proposals(batch)
        return batch

    def _breed(self, ranks: List[int], crowding: List[float]) -> MappingCandidate:
        """One offspring: tournament parents, crossover, mutation."""
        first = self._tournament(ranks, crowding)
        if len(self._population) >= 2 and self._rng.random() < self.crossover_rate:
            second = self._tournament(ranks, crowding)
            child = self.space.crossover(
                self._population[first][0], self._population[second][0], self._rng
            )
            if self._rng.random() < self.mutation_rate:
                child = self.space.mutate(child, self._rng)
            return child
        # Cloning a member would re-propose it verbatim; mutation keeps the
        # non-crossover path exploring.
        return self.space.mutate(self._population[first][0], self._rng)

    def observe(self, observations: Sequence[Observation]) -> None:
        super().observe(observations)
        merged: Dict[str, Tuple[MappingCandidate, Tuple[float, ...]]] = {}
        for candidate, vector in self._population:
            merged[candidate.digest()] = (candidate, vector)
        for observation in observations:
            if not observation.feasible:
                continue
            merged.setdefault(
                observation.candidate.digest(),
                (observation.candidate, tuple(observation.vector)),
            )
        entries = list(merged.values())
        if len(entries) > self.population_size:
            vectors = [vector for _, vector in entries]
            selected: List[int] = []
            for rank, members in self._fronts(vectors).items():
                room = self.population_size - len(selected)
                if room <= 0:
                    break
                if len(members) <= room:
                    selected.extend(members)
                    continue
                # Boundary front: keep the most spread-out members.  Sorting on
                # (-distance, index) makes ties deterministic.
                distances = crowding_distance([vectors[i] for i in members])
                by_spread = sorted(
                    zip(members, distances), key=lambda pair: (-pair[1], pair[0])
                )
                selected.extend(index for index, _ in by_spread[:room])
            entries = [entries[index] for index in selected]
        self._population = entries
        self._generation += 1
        telemetry.gauge("dse.search.nsga2.generation", self._generation)
        telemetry.gauge("dse.search.nsga2.population", len(entries))

    @property
    def generation(self) -> int:
        return self._generation

    def population(self) -> List[Tuple[MappingCandidate, Tuple[float, ...]]]:
        """The current evaluated population (a copy)."""
        return list(self._population)

    def state(self) -> Dict[str, Any]:
        return {
            "strategy": self.name,
            "rng": _rng_state(self._rng),
            "generation": self._generation,
            "population": [
                {"candidate": _candidate_state(candidate), "vector": list(vector)}
                for candidate, vector in self._population
            ],
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        self._check_state(state)
        _restore_rng(self._rng, state["rng"])
        self._generation = int(state["generation"])
        self._population = [
            (
                _candidate_from_state(entry["candidate"]),
                tuple(float(value) for value in entry["vector"]),
            )
            for entry in state["population"]
        ]


_STRATEGIES: Dict[str, Type[SearchStrategy]] = {
    ExhaustiveSearch.name: ExhaustiveSearch,
    RandomSearch.name: RandomSearch,
    AnnealingSearch.name: AnnealingSearch,
    NsgaSearch.name: NsgaSearch,
}

STRATEGY_NAMES: Tuple[str, ...] = ("exhaustive", "random", "annealing", "nsga2")


def strategy_options(name: str) -> Tuple[str, ...]:
    """The option names a strategy's constructor accepts (excluding the wiring)."""
    try:
        cls = _STRATEGIES[name]
    except KeyError:
        known = ", ".join(STRATEGY_NAMES)
        raise ModelError(
            f"unknown search strategy {name!r}; known strategies: {known}"
        ) from None
    parameters = inspect.signature(cls.__init__).parameters
    return tuple(
        parameter for parameter in parameters if parameter not in ("self", "space", "objectives")
    )


def make_strategy(
    name: str,
    space: DesignSpace,
    seed: int = 0,
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
    **options: Any,
) -> SearchStrategy:
    """Instantiate a strategy by name (the CLI's ``--strategy`` values).

    Unknown strategies and unknown/invalid options both raise
    :class:`~repro.errors.ModelError` naming the strategy and its valid
    options -- a raw ``TypeError``/``ValueError`` from a constructor never
    escapes.
    """
    valid = strategy_options(name)  # raises ModelError for unknown names
    cls = _STRATEGIES[name]
    kwargs: Dict[str, Any] = dict(options)
    if "seed" in valid:
        kwargs.setdefault("seed", seed)
    try:
        return cls(space, objectives=objectives, **kwargs)
    except (TypeError, ValueError) as error:
        # TypeError: unknown option names; ValueError: malformed option values
        # (e.g. a non-numeric scalarisation weight deep in a spec dict).
        raise ModelError(
            f"invalid options for search strategy {name!r}: {error}; "
            f"valid options: {', '.join(valid)}"
        ) from None
