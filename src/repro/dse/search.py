"""Search strategies over the mapping design space.

Strategies are *batch* proposers: each round they propose a list of
candidates, the explorer evaluates the batch (possibly across worker
processes, possibly served from the result store) and feeds the scored
metrics back through :meth:`SearchStrategy.observe`.  This shape keeps
every strategy trivially parallelisable and -- because proposals depend
only on the seeded RNG and on previously observed metrics, never on
wall-clock time -- deterministic under a fixed seed.

Shipped strategies:

* :class:`ExhaustiveSearch` -- walk the whole space in enumeration order
  (small spaces, ground truth for the others);
* :class:`RandomSearch` -- seeded uniform sampling;
* :class:`AnnealingSearch` -- greedy local search with simulated-annealing
  acceptance over a scalarised latency-plus-resource-cost score.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ModelError
from .space import DesignSpace, MappingCandidate

__all__ = [
    "SearchStrategy",
    "ExhaustiveSearch",
    "RandomSearch",
    "AnnealingSearch",
    "make_strategy",
    "STRATEGY_NAMES",
]


class SearchStrategy:
    """Base class: propose a batch, observe its scores, repeat."""

    name = "base"

    def __init__(self, space: DesignSpace) -> None:
        self.space = space

    def propose(self, budget_left: int) -> List[MappingCandidate]:
        """The next batch of candidates (may repeat already-seen ones)."""
        raise NotImplementedError

    def observe(self, scored: Sequence[Tuple[MappingCandidate, Mapping[str, Any]]]) -> None:
        """Feed back the metrics of the batch just proposed (default: ignore)."""

    @property
    def exhausted(self) -> bool:
        """True when the strategy has nothing left to propose."""
        return False


class ExhaustiveSearch(SearchStrategy):
    """Enumerate every candidate of the space, in deterministic order."""

    name = "exhaustive"

    def __init__(self, space: DesignSpace, batch_size: int = 32) -> None:
        super().__init__(space)
        self.batch_size = batch_size
        self._iterator = space.enumerate_candidates()
        self._exhausted = False

    def propose(self, budget_left: int) -> List[MappingCandidate]:
        batch: List[MappingCandidate] = []
        want = min(self.batch_size, budget_left)
        while len(batch) < want:
            try:
                batch.append(next(self._iterator))
            except StopIteration:
                self._exhausted = True
                break
        return batch

    @property
    def exhausted(self) -> bool:
        return self._exhausted


class RandomSearch(SearchStrategy):
    """Seeded uniform sampling of the space."""

    name = "random"

    def __init__(self, space: DesignSpace, seed: int = 0, batch_size: int = 32) -> None:
        super().__init__(space)
        self.batch_size = batch_size
        self._rng = random.Random(seed)

    def propose(self, budget_left: int) -> List[MappingCandidate]:
        want = min(self.batch_size, budget_left)
        return [self.space.random_candidate(self._rng) for _ in range(want)]


class AnnealingSearch(SearchStrategy):
    """Local search with simulated-annealing acceptance.

    Each round proposes ``neighbors_per_round`` single-move neighbours of the
    current candidate.  The scalar score minimised is ``latency_us +
    resource_weight_us * resources_used`` (infeasible candidates score
    infinite); the best neighbour is accepted when it improves, or with the
    Metropolis probability ``exp(-delta / temperature)`` otherwise, and the
    temperature decays geometrically every round.
    """

    name = "annealing"

    def __init__(
        self,
        space: DesignSpace,
        seed: int = 0,
        neighbors_per_round: int = 8,
        resource_weight_us: float = 100.0,
        initial_temperature_us: float = 200.0,
        cooling: float = 0.9,
    ) -> None:
        super().__init__(space)
        self._rng = random.Random(seed)
        self.neighbors_per_round = neighbors_per_round
        self.resource_weight_us = resource_weight_us
        self.temperature = initial_temperature_us
        self.cooling = cooling
        self._current: Optional[MappingCandidate] = None
        self._current_score = math.inf
        self._pending: List[MappingCandidate] = []

    def score(self, metrics: Mapping[str, Any]) -> float:
        """Scalarised cost of one candidate (lower is better, infeasible = inf)."""
        if not metrics.get("feasible", True):
            return math.inf
        return float(metrics["latency_us"]) + self.resource_weight_us * float(
            metrics["resources_used"]
        )

    def propose(self, budget_left: int) -> List[MappingCandidate]:
        if self._current is None:
            # Seed the walk with the default candidate plus random restarts.
            batch = [self.space.default_candidate()]
            while len(batch) < min(self.neighbors_per_round, budget_left):
                batch.append(self.space.random_candidate(self._rng))
        else:
            batch = self.space.neighbors(
                self._current, self._rng, min(self.neighbors_per_round, budget_left)
            )
        self._pending = batch
        return list(batch)

    def observe(self, scored: Sequence[Tuple[MappingCandidate, Mapping[str, Any]]]) -> None:
        best: Optional[Tuple[MappingCandidate, float]] = None
        for candidate, metrics in scored:
            value = self.score(metrics)
            if best is None or value < best[1]:
                best = (candidate, value)
        self._pending = []
        # math.isinf, not an identity check: an infinity *computed* from the
        # metrics (e.g. float("inf") latency) is not the math.inf singleton,
        # and an all-infeasible round must never become the current point.
        if best is None or math.isinf(best[1]):
            self.temperature *= self.cooling
            return
        candidate, value = best
        if value <= self._current_score:
            self._current, self._current_score = candidate, value
        else:
            delta = value - self._current_score
            if self.temperature > 0 and self._rng.random() < math.exp(
                -delta / self.temperature
            ):
                self._current, self._current_score = candidate, value
        self.temperature *= self.cooling


STRATEGY_NAMES: Tuple[str, ...] = ("exhaustive", "random", "annealing")


def make_strategy(
    name: str, space: DesignSpace, seed: int = 0, **options: Any
) -> SearchStrategy:
    """Instantiate a strategy by name (the CLI's ``--strategy`` values)."""
    if name == "exhaustive":
        return ExhaustiveSearch(space, **options)
    if name == "random":
        return RandomSearch(space, seed=seed, **options)
    if name == "annealing":
        return AnnealingSearch(space, seed=seed, **options)
    raise ModelError(
        f"unknown search strategy {name!r}; known strategies: {', '.join(STRATEGY_NAMES)}"
    )
