"""Exploration checkpoints: resumable strategy state next to the result store.

A long exploration is a pure function of ``(problem parameters, strategy,
seed)``; the only thing lost on interruption is the *search state* --
the strategy's RNG position, current point, temperature, population or
enumeration cursor, plus the explorer's counters and the order in which
candidates were first scored.  This module persists exactly that:

* :class:`ExplorationCheckpoint` -- one JSON-safe snapshot taken at a
  round boundary: the exploration's configuration (for resume-time
  validation), the budget spent, the counters, the ``(candidate digest,
  job digest)`` pairs in first-evaluation order, the current front
  digests and the strategy's :meth:`~repro.dse.search.SearchStrategy
  .state` payload;
* :class:`CheckpointFile` -- snapshot persistence next to the
  :class:`~repro.campaign.store.ResultStore`.  Every round atomically
  replaces the file with the newest snapshot (write-to-temp + fsync +
  rename, so the file stays one line large and a crash never corrupts
  the previous round); on load the last parseable line wins and corrupt
  lines are skipped (reported through the ``repro.dse.checkpoint``
logger), never failing the
  resume.

The checkpoint deliberately stores digests, not metrics: the metrics
live in the result store, keyed by job digest, so resuming needs the
store that backed the original run -- and gets bit-identical results
because nothing is re-evaluated or re-derived.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from ..errors import ModelError

__all__ = ["CHECKPOINT_VERSION", "ExplorationCheckpoint", "CheckpointFile"]

_LOG = logging.getLogger("repro.dse.checkpoint")

#: Format version written into every snapshot; bumped on incompatible change.
CHECKPOINT_VERSION = 1

#: The configuration fields that must match between a checkpoint and the
#: resuming explorer.  ``budget`` is deliberately absent: resuming with a
#: *larger* budget is the supported way to extend a finished exploration
#: (a continuation -- still seed-deterministic, but only a same-budget
#: resume replays an uninterrupted run bit-identically, because the seeded
#: strategies size their batches by the remaining budget).
CONFIG_FIELDS = (
    "problem",
    "strategy",
    "seed",
    "parameters",
    "objectives",
    "max_resources",
    "explore_orders",
    "strict",
    "strategy_options",
)


@dataclass
class ExplorationCheckpoint:
    """One resumable snapshot of an exploration, taken at a round boundary."""

    # -- configuration (validated on resume) --------------------------------
    problem: str
    strategy: str
    seed: int
    parameters: Dict[str, Any] = field(default_factory=dict)
    objectives: List[List[str]] = field(default_factory=list)  # [key, label] pairs
    max_resources: Optional[int] = None
    explore_orders: bool = True
    strict: bool = True
    strategy_options: Dict[str, Any] = field(default_factory=dict)
    # -- progress -----------------------------------------------------------
    budget: int = 0
    spent: int = 0
    rounds: int = 0
    stale_rounds: int = 0
    evaluated: int = 0
    cache_hits: int = 0
    infeasible: int = 0
    errors: int = 0
    #: ``[candidate digest, job digest, ok]`` triples in first-evaluation
    #: order -- the exact candidate sequence, replayable from the store.
    results: List[List[Any]] = field(default_factory=list)
    #: Digests of the current Pareto front, in front order.
    front: List[str] = field(default_factory=list)
    # -- strategy -----------------------------------------------------------
    strategy_state: Dict[str, Any] = field(default_factory=dict)

    def to_record(self) -> Dict[str, Any]:
        return {
            "version": CHECKPOINT_VERSION,
            "problem": self.problem,
            "strategy": self.strategy,
            "seed": self.seed,
            "parameters": dict(self.parameters),
            "objectives": [list(pair) for pair in self.objectives],
            "max_resources": self.max_resources,
            "explore_orders": self.explore_orders,
            "strict": self.strict,
            "strategy_options": dict(self.strategy_options),
            "budget": self.budget,
            "spent": self.spent,
            "rounds": self.rounds,
            "stale_rounds": self.stale_rounds,
            "evaluated": self.evaluated,
            "cache_hits": self.cache_hits,
            "infeasible": self.infeasible,
            "errors": self.errors,
            "results": [list(entry) for entry in self.results],
            "front": list(self.front),
            "strategy_state": dict(self.strategy_state),
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "ExplorationCheckpoint":
        version = record.get("version")
        if version != CHECKPOINT_VERSION:
            raise ModelError(
                f"unsupported checkpoint version {version!r} "
                f"(this build reads version {CHECKPOINT_VERSION})"
            )
        try:
            return cls(
                problem=record["problem"],
                strategy=record["strategy"],
                seed=record["seed"],
                parameters=dict(record["parameters"]),
                objectives=[list(pair) for pair in record["objectives"]],
                max_resources=record["max_resources"],
                explore_orders=record["explore_orders"],
                strict=record["strict"],
                strategy_options=dict(record["strategy_options"]),
                budget=record["budget"],
                spent=record["spent"],
                rounds=record["rounds"],
                stale_rounds=record["stale_rounds"],
                evaluated=record["evaluated"],
                cache_hits=record["cache_hits"],
                infeasible=record["infeasible"],
                errors=record["errors"],
                results=[list(entry) for entry in record["results"]],
                front=list(record["front"]),
                strategy_state=dict(record["strategy_state"]),
            )
        except (KeyError, TypeError) as error:
            raise ModelError(f"checkpoint record is missing or malformed: {error}") from None

    def config(self) -> Dict[str, Any]:
        """The configuration slice compared by :meth:`validate_against`."""
        record = self.to_record()
        return {name: record[name] for name in CONFIG_FIELDS}

    def validate_against(self, expected: Mapping[str, Any]) -> None:
        """Raise :class:`ModelError` naming every configuration mismatch."""
        mine = self.config()
        mismatches = [
            f"{name}: checkpoint has {mine[name]!r}, exploration has {expected[name]!r}"
            for name in CONFIG_FIELDS
            if mine[name] != expected[name]
        ]
        if mismatches:
            raise ModelError(
                "checkpoint does not match this exploration -- "
                + "; ".join(mismatches)
            )


class CheckpointFile:
    """JSONL checkpoint persistence (newest parseable line wins on load).

    Each :meth:`write` replaces the file atomically (write-to-temp, fsync,
    rename), so the file stays one snapshot large no matter how many rounds
    run and a crash mid-write can never corrupt the previous snapshot.
    :meth:`load` still reads the *last* parseable line and skips corrupt
    ones, so files concatenated from several interrupted runs -- or written
    by tools that append -- load fine too.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = Path(path)
        self.skipped_lines = 0

    @property
    def path(self) -> Path:
        return self._path

    def exists(self) -> bool:
        return self._path.exists()

    def reset(self) -> None:
        """Remove the file (a fresh run starting over discards old rounds)."""
        if self._path.exists():
            self._path.unlink()

    def write(self, checkpoint: ExplorationCheckpoint) -> None:
        """Atomically replace the file with one snapshot (fsync + rename)."""
        line = json.dumps(checkpoint.to_record(), sort_keys=True)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        tmp_path = self._path.with_suffix(self._path.suffix + ".tmp")
        with tmp_path.open("w", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        tmp_path.replace(self._path)

    def load(self) -> Optional[ExplorationCheckpoint]:
        """The newest parseable snapshot, or None when the file is absent/empty."""
        if not self._path.exists():
            return None
        newest: Optional[Dict[str, Any]] = None
        self.skipped_lines = 0
        with self._path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    self.skipped_lines += 1
                    continue
                if not isinstance(record, dict):
                    self.skipped_lines += 1
                    continue
                newest = record
        if self.skipped_lines:
            _LOG.warning(
                "checkpoint file %s: skipped %d corrupt JSONL line(s) "
                "(truncated write or concurrent crash); resuming from the "
                "newest intact snapshot",
                self._path,
                self.skipped_lines,
            )
        if newest is None:
            return None
        return ExplorationCheckpoint.from_record(newest)
