"""The exploration driver: strategies x campaign runner x Pareto front.

:class:`MappingExplorer` wires the pieces together: a search strategy
proposes candidate batches, the :class:`~repro.campaign.runner
.CampaignRunner` scores each batch (in-process or across worker
processes, served from the result store when a candidate was already
evaluated), the scored metrics feed back into the strategy, and every
feasible evaluation is offered to a :class:`~repro.dse.pareto
.ParetoFront`.  The whole loop is a pure function of ``(problem
parameters, strategy, seed)``: re-running it explores the identical
candidate sequence, and re-running it against the same store evaluates
zero new candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..campaign.registry import ScenarioRegistry, default_registry
from ..campaign.results import JobResult
from ..campaign.runner import CampaignRunner
from ..campaign.spec import ScenarioSpec
from ..campaign.store import ResultStore
from ..errors import ModelError
from .pareto import DEFAULT_OBJECTIVES, Objective, ParetoFront, ranked_rows
from .problems import DesignProblem, get_problem
from .scenario import DSE_SCENARIO
from .search import SearchStrategy, make_strategy
from .space import DesignSpace, MappingCandidate

__all__ = ["ExplorationReport", "MappingExplorer"]

#: Stop after this many consecutive rounds in which every proposed candidate
#: had already been evaluated (random search saturating a small space).
MAX_STALE_ROUNDS = 5


@dataclass
class ExplorationReport:
    """Everything one exploration produced."""

    problem: str
    strategy: str
    objectives: Tuple[Objective, ...] = DEFAULT_OBJECTIVES
    results: List[JobResult] = field(default_factory=list)  # first-evaluation order
    front: ParetoFront = field(default_factory=ParetoFront)
    rounds: int = 0
    evaluated: int = 0
    cache_hits: int = 0
    infeasible: int = 0
    errors: int = 0

    @property
    def explored(self) -> int:
        """Number of distinct candidates scored (fresh or from the store)."""
        return len(self.results)

    def entries(self) -> List[Tuple[str, Mapping[str, Any]]]:
        """(candidate digest, metrics) pairs of every scored candidate."""
        return [
            (MappingCandidate.from_parameters(result.parameters).digest(), result.metrics)
            for result in self.results
            if result.ok
        ]

    def best(self) -> Optional[JobResult]:
        """The feasible result with the smallest latency, or None."""
        feasible = [
            result
            for result in self.results
            if result.ok and result.metrics.get("feasible")
        ]
        if not feasible:
            return None
        # Ties on latency break toward fewer resources (matching the front's
        # dominance rule), then toward the first-explored candidate.
        return min(
            feasible,
            key=lambda result: (
                result.metrics["latency_ps"],
                result.metrics["resources_used"],
            ),
        )

    def best_candidate(self) -> Optional[MappingCandidate]:
        result = self.best()
        if result is None:
            return None
        return MappingCandidate.from_parameters(result.parameters)

    def front_rows(self) -> List[Dict[str, object]]:
        return self.front.rows()

    def ranked(self, top: Optional[int] = None) -> List[Dict[str, object]]:
        return ranked_rows(self.entries(), self.objectives, top=top)

    def summary(self) -> str:
        return (
            f"dse {self.problem}/{self.strategy}: {self.explored} candidates in "
            f"{self.rounds} rounds, {self.evaluated} evaluated, {self.cache_hits} "
            f"cache hits, {self.infeasible} infeasible, {self.errors} errors, "
            f"front size {len(self.front)}"
        )


class MappingExplorer:
    """Run one design-space exploration end to end.

    Parameters mirror the ``repro.cli dse run`` options; ``parameters``
    carries problem overrides (``items``, ``seed``, ``processors``,
    ``stages``, ...).  ``jobs`` and ``store`` are handed to the campaign
    runner unchanged.

    Candidate scoring goes through the ``dse-eval`` scenario, whose executor
    evaluates via a per-process cached :class:`~repro.dse.compile
    .CompiledProblem` -- the problem's TDG template is compiled once and only
    specialised per candidate, in every worker (set ``REPRO_DSE_COMPILE=0``
    to force the from-scratch build).  With ``strict`` left on, proposal
    sampling only draws service orders consistent with the data dependencies,
    so the budget is spent on feasible candidates.
    """

    def __init__(
        self,
        problem: Union[str, DesignProblem] = "didactic",
        strategy: str = "random",
        budget: int = 128,
        seed: int = 0,
        parameters: Optional[Mapping[str, Any]] = None,
        max_resources: Optional[int] = None,
        explore_orders: bool = True,
        strict: bool = True,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        record_instants: bool = False,
        registry: Optional[ScenarioRegistry] = None,
        objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
        strategy_options: Optional[Mapping[str, Any]] = None,
    ) -> None:
        if budget < 1:
            raise ModelError("the exploration budget must be at least one candidate")
        self.problem = get_problem(problem) if isinstance(problem, str) else problem
        self.strategy_name = strategy
        self.budget = budget
        #: Seed of the *search* randomness only; the stimulus seed is a problem
        #: parameter (``parameters={"seed": ...}``), so exploring with another
        #: search seed still optimises the same workload.
        self.seed = seed
        self.parameters = dict(parameters or {})
        self.max_resources = max_resources
        self.explore_orders = explore_orders
        #: Feasibility-aware order sampling (see DesignSpace ``strict``).
        self.strict = strict
        self.record_instants = record_instants
        self.objectives = tuple(objectives)
        self.strategy_options = dict(strategy_options or {})
        self.runner = CampaignRunner(registry=registry, store=store, jobs=jobs)

    # ------------------------------------------------------------------
    def build_space(self) -> DesignSpace:
        return self.problem.space(
            self.parameters,
            max_resources=self.max_resources,
            explore_orders=self.explore_orders,
            strict=self.strict,
        )

    def _spec(self, candidate: MappingCandidate, resolved: Mapping[str, Any]) -> ScenarioSpec:
        parameters: Dict[str, Any] = {"problem": self.problem.name}
        parameters.update(resolved)
        parameters.update(candidate.to_parameters())
        return ScenarioSpec(
            scenario=DSE_SCENARIO,
            parameters=parameters,
            record_instants=self.record_instants,
        )

    def run(self) -> ExplorationReport:
        """Explore until the budget is spent or the strategy runs dry."""
        resolved = self.problem.parameters(self.parameters)
        space = self.build_space()
        strategy: SearchStrategy = make_strategy(
            self.strategy_name, space, seed=self.seed, **self.strategy_options
        )
        report = ExplorationReport(
            problem=self.problem.name,
            strategy=self.strategy_name,
            objectives=self.objectives,
            front=ParetoFront(self.objectives),
        )
        seen: Dict[str, JobResult] = {}
        stale_rounds = 0
        budget_left = self.budget
        while budget_left > 0 and not strategy.exhausted and stale_rounds < MAX_STALE_ROUNDS:
            batch = strategy.propose(budget_left)
            if not batch:
                if strategy.exhausted:
                    break
                stale_rounds += 1
                continue
            # Digesting normalises + hashes the whole encoding; do it once per
            # proposed candidate and reuse below (observe() needs it again).
            digests = [candidate.digest() for candidate in batch]
            fresh: List[Tuple[str, MappingCandidate]] = []
            fresh_digests = set()
            for digest, candidate in zip(digests, batch):
                if digest in seen or digest in fresh_digests:
                    continue
                if len(fresh) >= budget_left:
                    break
                fresh.append((digest, candidate))
                fresh_digests.add(digest)

            if fresh:
                campaign = self.runner.run(
                    [self._spec(candidate, resolved) for _, candidate in fresh]
                )
                for (digest, candidate), result in zip(fresh, campaign.results):
                    seen[digest] = result
                    report.results.append(result)
                    if not result.ok:
                        report.errors += 1
                        continue
                    if not result.metrics.get("feasible"):
                        report.infeasible += 1
                        continue
                    report.front.offer(digest, result.metrics, payload=candidate)
                report.cache_hits += campaign.cache_hits
                report.evaluated += campaign.simulated
                budget_left -= len(fresh)
                stale_rounds = 0
            else:
                stale_rounds += 1

            strategy.observe(
                [
                    (candidate, seen[digest].metrics)
                    for digest, candidate in zip(digests, batch)
                    if digest in seen and seen[digest].ok
                ]
            )
            report.rounds += 1
        return report
