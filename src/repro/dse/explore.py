"""The exploration driver: strategies x campaign runner x Pareto front.

:class:`MappingExplorer` wires the pieces together: a search strategy
proposes candidate batches, the :class:`~repro.campaign.runner
.CampaignRunner` scores each batch (in-process or across worker
processes, served from the result store when a candidate was already
evaluated), the scored metrics are projected onto the explorer's
:class:`~repro.dse.pareto.Objective` tuple and fed back into the
strategy as :class:`~repro.dse.search.Observation` vectors, and every
feasible evaluation is offered to a :class:`~repro.dse.pareto
.ParetoFront`.  The whole loop is a pure function of ``(problem
parameters, strategy, seed)``: re-running it explores the identical
candidate sequence, and re-running it against the same store evaluates
zero new candidates.

Explorations are **resumable**: with ``checkpoint=`` the explorer
persists an :class:`~repro.dse.checkpoint.ExplorationCheckpoint` after
every round (strategy state, candidate sequence, front digests,
counters), and ``resume=True`` restores all of it -- the resumed run
continues the identical candidate stream, so an exploration interrupted
at a round boundary is bit-identical to an uninterrupted one.  Use
``max_rounds=`` (CLI ``--rounds``) to interrupt cleanly: it bounds the
rounds executed by one call without touching the budget, so every
proposal batch is sized exactly as in the uninterrupted run.
(Interrupting by *shrinking the budget* instead only preserves the
stream for ``exhaustive``, whose cursor is batching-independent; the
seeded strategies size their draws by the remaining budget, so a
different budget is a different stream.)
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from .. import telemetry
from ..campaign.registry import ScenarioRegistry
from ..campaign.results import JobResult
from ..campaign.runner import CampaignRunner
from ..campaign.spec import ScenarioSpec, canonical_json
from ..campaign.store import ResultStore
from ..errors import CampaignError, ModelError
from .checkpoint import CheckpointFile, ExplorationCheckpoint
from .engine import resolve_backend
from .evaluate import EVALUATOR_MODES
from .pareto import (
    DEFAULT_OBJECTIVES,
    Objective,
    ParetoFront,
    objective_vector,
    ranked_rows,
)
from .problems import DesignProblem, get_problem
from .scenario import DSE_SCENARIO
from .search import Observation, Scalarization, SearchStrategy, make_strategy
from .space import DesignSpace, MappingCandidate

__all__ = ["ExplorationReport", "MappingExplorer", "front_from_store"]

#: Stop after this many consecutive rounds in which every proposed candidate
#: had already been evaluated (random search saturating a small space).
MAX_STALE_ROUNDS = 5


@dataclass
class ExplorationReport:
    """Everything one exploration produced."""

    problem: str
    strategy: str
    objectives: Tuple[Objective, ...] = DEFAULT_OBJECTIVES
    results: List[JobResult] = field(default_factory=list)  # first-evaluation order
    front: ParetoFront = field(default_factory=ParetoFront)
    rounds: int = 0
    evaluated: int = 0
    cache_hits: int = 0
    infeasible: int = 0
    errors: int = 0
    #: True when this report continues a checkpointed exploration; the counters
    #: and results then cover the combined (original + resumed) run.
    resumed: bool = False
    #: Wall-clock seconds of this :meth:`MappingExplorer.run` call.
    wall_time_s: float = 0.0
    #: The run manifest appended to the ledger, when one was configured.
    manifest: Optional["telemetry.RunManifest"] = None

    @property
    def explored(self) -> int:
        """Number of distinct candidates scored (fresh or from the store)."""
        return len(self.results)

    def entries(self) -> List[Tuple[str, Mapping[str, Any]]]:
        """(candidate digest, metrics) pairs of every scored candidate."""
        return [
            (MappingCandidate.from_parameters(result.parameters).digest(), result.metrics)
            for result in self.results
            if result.ok
        ]

    def best(self) -> Optional[JobResult]:
        """The feasible result with the smallest latency, or None."""
        feasible = [
            result
            for result in self.results
            if result.ok and result.metrics.get("feasible")
        ]
        if not feasible:
            return None
        # Ties on latency break toward fewer resources (matching the front's
        # dominance rule), then toward the first-explored candidate.
        return min(
            feasible,
            key=lambda result: (
                result.metrics["latency_ps"],
                result.metrics["resources_used"],
            ),
        )

    def best_candidate(self) -> Optional[MappingCandidate]:
        result = self.best()
        if result is None:
            return None
        return MappingCandidate.from_parameters(result.parameters)

    def front_rows(self) -> List[Dict[str, object]]:
        return self.front.rows()

    def ranked(self, top: Optional[int] = None) -> List[Dict[str, object]]:
        return ranked_rows(self.entries(), self.objectives, top=top)

    def summary(self) -> str:
        return (
            f"dse {self.problem}/{self.strategy}: {self.explored} candidates in "
            f"{self.rounds} rounds, {self.evaluated} evaluated, {self.cache_hits} "
            f"cache hits, {self.infeasible} infeasible, {self.errors} errors, "
            f"front size {len(self.front)}, hypervolume {self.front.hypervolume_text()}"
        )


class MappingExplorer:
    """Run one design-space exploration end to end.

    Parameters mirror the ``repro.cli dse run`` options; ``parameters``
    carries problem overrides (``items``, ``seed``, ``processors``,
    ``stages``, ...).  ``jobs`` and ``store`` are handed to the campaign
    runner unchanged.

    Candidate scoring goes through the ``dse-eval`` scenario, whose executor
    evaluates via a per-process cached :class:`~repro.dse.compile
    .CompiledProblem` -- the problem's TDG template is compiled once and only
    specialised per candidate, in every worker (set ``REPRO_DSE_COMPILE=0``
    to force the from-scratch build).  ``evaluator`` selects the scoring
    path within the compiled evaluator (``replay``/``steady``/``auto``,
    see :data:`~repro.dse.evaluate.EVALUATOR_MODES`); every mode produces
    identical objectives.  With ``strict`` left on, proposal
    sampling only draws service orders consistent with the data dependencies,
    so the budget is spent on feasible candidates.

    ``checkpoint=`` (a path or :class:`~repro.dse.checkpoint.CheckpointFile`)
    persists a resumable snapshot after every round; ``resume=True`` restores
    the newest snapshot -- it needs both the checkpoint and the ``store`` that
    backed the original run, and validates that problem, strategy, seed,
    parameters and objectives all match before continuing the candidate
    stream.  The ``budget`` may differ on resume: a larger one *extends* the
    exploration past the original target (a deterministic continuation), but
    only a same-budget resume is bit-identical to an uninterrupted run,
    because the seeded strategies size their batches by the remaining budget.
    ``max_rounds=`` bounds the number of rounds *this call* executes (resumed
    rounds do not count), which is the clean way to interrupt a
    feedback-driven strategy at a round boundary.
    """

    def __init__(
        self,
        problem: Union[str, DesignProblem] = "didactic",
        strategy: str = "random",
        budget: int = 128,
        seed: int = 0,
        parameters: Optional[Mapping[str, Any]] = None,
        max_resources: Optional[int] = None,
        explore_orders: bool = True,
        strict: bool = True,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        record_instants: bool = False,
        registry: Optional[ScenarioRegistry] = None,
        objectives: Optional[Sequence[Objective]] = None,
        strategy_options: Optional[Mapping[str, Any]] = None,
        checkpoint: Optional[Union[str, Path, CheckpointFile]] = None,
        resume: bool = False,
        max_rounds: Optional[int] = None,
        convergence: Optional[Union[str, Path, "telemetry.ConvergenceTrace"]] = None,
        progress: Optional[Callable[[Dict[str, Any]], None]] = None,
        ledger: Optional[Union[str, Path, "telemetry.RunLedger"]] = None,
        evaluator: str = "replay",
        backend: Optional[str] = None,
    ) -> None:
        if budget < 1:
            raise ModelError("the exploration budget must be at least one candidate")
        if max_rounds is not None and max_rounds < 1:
            raise ModelError("max_rounds must be at least one round")
        if evaluator not in EVALUATOR_MODES:
            raise ModelError(
                f"unknown evaluator mode {evaluator!r}; expected one of {EVALUATOR_MODES}"
            )
        if backend is not None:
            # Fail fast (before any round runs) on a typo or on requesting
            # numpy in an interpreter that does not have it.
            resolve_backend(backend)
        self.problem = get_problem(problem) if isinstance(problem, str) else problem
        self.strategy_name = strategy
        self.budget = budget
        #: Seed of the *search* randomness only; the stimulus seed is a problem
        #: parameter (``parameters={"seed": ...}``), so exploring with another
        #: search seed still optimises the same workload.
        self.seed = seed
        self.parameters = dict(parameters or {})
        self.max_resources = max_resources
        self.explore_orders = explore_orders
        #: Feasibility-aware order sampling (see DesignSpace ``strict``).
        self.strict = strict
        self.record_instants = record_instants
        #: Candidate scoring path (see :data:`~repro.dse.evaluate
        #: .EVALUATOR_MODES`).  Deliberately *not* part of :meth:`_config`:
        #: every mode yields identical objectives, so a checkpointed run may
        #: be resumed under another mode and stored records stay shareable.
        self.evaluator = evaluator
        #: Array backend request threaded to the batch engine (``None`` to
        #: let each worker auto-detect, or ``"auto"``/``"python"``/
        #: ``"numpy"``).  Like ``evaluator`` it is excluded from
        #: :meth:`_config`: both backends are certified bit-identical, so a
        #: checkpoint resumes and stored records stay shareable either way.
        self.backend = backend
        #: None picks the problem's own objective tuple (heterogeneous
        #: problems add per-kind axes to the default latency/resources pair).
        self.objectives = (
            tuple(objectives) if objectives is not None else tuple(self.problem.objectives)
        )
        self.strategy_options = dict(strategy_options or {})
        self.max_rounds = max_rounds
        if checkpoint is None or isinstance(checkpoint, CheckpointFile):
            self.checkpoint = checkpoint
        else:
            self.checkpoint = CheckpointFile(checkpoint)
        #: Optional per-round convergence JSONL (see repro.telemetry); like the
        #: checkpoint it is reset on a fresh run and extended on resume.
        if convergence is None or isinstance(convergence, telemetry.ConvergenceTrace):
            self.convergence = convergence
        else:
            self.convergence = telemetry.ConvergenceTrace(convergence)
        #: Optional per-round callback fed the same record the trace persists
        #: (the CLI's live progress line).
        self.progress = progress
        #: Optional run ledger: when set, :meth:`run` appends a RunManifest
        #: (provenance + metrics + folded telemetry) after the exploration.
        if ledger is None or isinstance(ledger, telemetry.RunLedger):
            self.ledger = ledger
        else:
            self.ledger = telemetry.RunLedger(ledger)
        self.resume = resume
        if resume and self.checkpoint is None:
            raise ModelError("resume=True needs a checkpoint to resume from")
        if resume and store is None:
            raise ModelError(
                "resume=True needs the result store that backed the checkpointed "
                "run (the checkpoint stores digests, the store stores metrics)"
            )
        self.runner = CampaignRunner(registry=registry, store=store, jobs=jobs)

    # ------------------------------------------------------------------
    def build_space(self) -> DesignSpace:
        return self.problem.space(
            self.parameters,
            max_resources=self.max_resources,
            explore_orders=self.explore_orders,
            strict=self.strict,
        )

    def evaluate_batch(self, candidates: Sequence[MappingCandidate]) -> List[JobResult]:
        """Score ``candidates`` as one batch, outside the search loop.

        The list goes through the explorer's own runner, so results are
        served from (and persisted to) the configured store exactly as the
        exploration rounds do, and fresh candidates ride the scenario's
        batch executor -- one compiled sweep per shared problem
        parameterisation instead of one replay per candidate.  Results come
        back in candidate order.
        """
        resolved = self.problem.parameters(self.parameters)
        specs = [self._spec(candidate, resolved) for candidate in candidates]
        return list(self.runner.run(specs).results)

    def _spec(self, candidate: MappingCandidate, resolved: Mapping[str, Any]) -> ScenarioSpec:
        parameters: Dict[str, Any] = {"problem": self.problem.name}
        parameters.update(resolved)
        parameters.update(candidate.to_parameters())
        return ScenarioSpec(
            scenario=DSE_SCENARIO,
            parameters=parameters,
            record_instants=self.record_instants,
            evaluator=self.evaluator,
            backend=self.backend,
        )

    def _config(self, resolved: Mapping[str, Any]) -> Dict[str, Any]:
        """The JSON-normalised configuration a checkpoint must match to resume."""
        config = {
            "problem": self.problem.name,
            "strategy": self.strategy_name,
            "seed": self.seed,
            "parameters": dict(resolved),
            "objectives": [[objective.key, objective.label] for objective in self.objectives],
            "max_resources": self.max_resources,
            "explore_orders": self.explore_orders,
            "strict": self.strict,
            # Scalarisation policies may be passed as instances; their spec()
            # is the JSON-safe (and make_scalarization-reinstantiable) form.
            "strategy_options": {
                key: value.spec() if isinstance(value, Scalarization) else value
                for key, value in self.strategy_options.items()
            },
        }
        # Round-trip through JSON so tuples/lists and int/float spellings
        # compare equal to a loaded checkpoint's record.
        try:
            return json.loads(json.dumps(config, sort_keys=True))
        except (TypeError, ValueError) as error:
            raise ModelError(
                f"exploration configuration is not JSON-safe ({error}); "
                "strategy options must be JSON-safe values (checkpoints and "
                "resume validation serialise them)"
            ) from None

    def _snapshot(
        self,
        config: Mapping[str, Any],
        strategy: SearchStrategy,
        report: ExplorationReport,
        sequence: List[List[Any]],
        spent: int,
        stale_rounds: int,
    ) -> ExplorationCheckpoint:
        return ExplorationCheckpoint(
            problem=config["problem"],
            strategy=config["strategy"],
            seed=config["seed"],
            parameters=dict(config["parameters"]),
            objectives=[list(pair) for pair in config["objectives"]],
            max_resources=config["max_resources"],
            explore_orders=config["explore_orders"],
            strict=config["strict"],
            strategy_options=dict(config["strategy_options"]),
            budget=self.budget,
            spent=spent,
            rounds=report.rounds,
            stale_rounds=stale_rounds,
            evaluated=report.evaluated,
            cache_hits=report.cache_hits,
            infeasible=report.infeasible,
            errors=report.errors,
            results=[list(entry) for entry in sequence],
            front=report.front.digests(),
            strategy_state=strategy.state(),
        )

    def _restore(
        self,
        config: Mapping[str, Any],
        strategy: SearchStrategy,
        report: ExplorationReport,
        seen: Dict[str, JobResult],
        sequence: List[List[Any]],
    ) -> Tuple[int, int]:
        """Restore strategy + report from the checkpoint; returns (spent, stale)."""
        assert self.checkpoint is not None
        loaded = self.checkpoint.load()
        if loaded is None:
            raise ModelError(
                f"cannot resume: checkpoint {self.checkpoint.path} is absent or empty"
            )
        loaded.validate_against(config)
        strategy.restore(loaded.strategy_state)
        store = self.runner.store
        assert store is not None  # enforced in __init__
        for candidate_digest, job_digest, ok in loaded.results:
            if ok:
                record = store.get(job_digest)
                if record is None:
                    raise ModelError(
                        f"cannot resume: the result store is missing job "
                        f"{job_digest[:12]} referenced by the checkpoint -- "
                        "resume against the store that backed the original run"
                    )
                result = JobResult.from_record(record).with_cached(True)
            else:
                result = JobResult(
                    job_digest=job_digest,
                    scenario=DSE_SCENARIO,
                    parameters={},
                    replication=0,
                    seed=0,
                    error="failed before the resume (error results are not stored)",
                )
            seen[candidate_digest] = result
            report.results.append(result)
            sequence.append([candidate_digest, job_digest, bool(ok)])
            if result.ok and result.metrics.get("feasible"):
                report.front.offer(
                    candidate_digest,
                    result.metrics,
                    payload=MappingCandidate.from_parameters(result.parameters),
                )
        if report.front.digests() != list(loaded.front):
            raise ModelError(
                "cannot resume: the front rebuilt from the store does not match "
                "the checkpointed front digests -- the store contents changed "
                "since the checkpoint was written"
            )
        report.rounds = loaded.rounds
        report.evaluated = loaded.evaluated
        report.cache_hits = loaded.cache_hits
        report.infeasible = loaded.infeasible
        report.errors = loaded.errors
        report.resumed = True
        return loaded.spent, loaded.stale_rounds

    def _round_record(
        self,
        report: ExplorationReport,
        spent: int,
        stale_rounds: int,
        fresh_count: int,
        elapsed_ns: int,
    ) -> Dict[str, Any]:
        """One convergence record: the exploration's state after a round."""
        explored = report.explored
        feasible = explored - report.infeasible - report.errors
        # Hypervolume is only defined for two-objective fronts; a
        # heterogeneous (3+ objective) exploration records an honest None
        # instead of a fabricated scalar.
        hypervolume: Optional[float] = None
        if len(report.front.objectives) == 2:
            hypervolume = report.front.hypervolume()
        seconds = elapsed_ns / 1e9
        return {
            "round": report.rounds,
            "spent": spent,
            "explored": explored,
            "evaluated": report.evaluated,
            "cache_hits": report.cache_hits,
            "infeasible": report.infeasible,
            "errors": report.errors,
            "front_size": len(report.front),
            "hypervolume": hypervolume,
            "feasible_ratio": round(feasible / explored, 4) if explored else None,
            "fresh": fresh_count,
            "candidates_per_second": (
                round(fresh_count / seconds, 2) if seconds > 0 else None
            ),
            "round_seconds": round(seconds, 6),
            "stale_rounds": stale_rounds,
        }

    def _emit_round(self, record: Mapping[str, Any]) -> None:
        """Persist + publish one round record (trace, callback, telemetry)."""
        telemetry.count("dse.explore.rounds")
        telemetry.gauge("dse.explore.front_size", record["front_size"])
        if record["hypervolume"] is not None:
            telemetry.gauge("dse.explore.hypervolume", record["hypervolume"])
        if self.convergence is not None:
            self.convergence.append(record)
        if self.progress is not None:
            self.progress(dict(record))

    def run(self) -> ExplorationReport:
        """Explore until the budget is spent or the strategy runs dry.

        With a ``ledger`` configured the whole exploration is additionally
        measured end to end and a :class:`~repro.telemetry.manifest
        .RunManifest` is appended: when telemetry is not already enabled
        (no ``--trace``), the run executes inside a private
        :func:`~repro.telemetry.collect` scope so the manifest still
        carries real counters and cache-hit rates without globally enabling
        telemetry -- the scope's parent is disabled, so nothing leaks.
        """
        with telemetry.timed_ns() as wall_timer:
            folded: Optional[Dict[str, Any]] = None
            if self.ledger is not None and not telemetry.enabled():
                with telemetry.collect(enable=True) as scope:
                    report = self._run_rounds()
                folded = scope.snapshot()
            else:
                report = self._run_rounds()
                if self.ledger is not None:
                    folded = telemetry.snapshot()
        report.wall_time_s = wall_timer.elapsed_ns / 1e9
        if self.ledger is not None:
            report.manifest = self.build_manifest(report, folded)
            self.ledger.append(report.manifest)
        return report

    def build_manifest(
        self,
        report: ExplorationReport,
        telemetry_snapshot: Optional[Mapping[str, Any]] = None,
    ) -> "telemetry.RunManifest":
        """The run's provenance record (see :mod:`repro.telemetry.manifest`).

        The problem parameterisation feeds the problem digest; everything
        that shapes the execution -- strategy, seed, budget, evaluator mode,
        worker count -- feeds the config digest, so the regression sentinel
        only ever compares runs of the same problem under the same setup.
        """
        resolved = self.problem.parameters(self.parameters)
        config = self._config(resolved)
        config.pop("parameters", None)  # digested separately (problem digest)
        config["budget"] = self.budget
        config["jobs"] = self.runner.jobs
        config["evaluator"] = self.evaluator
        config["backend"] = self.backend or "auto"
        config["compile"] = (
            "compiled" if os.environ.get("REPRO_DSE_COMPILE", "1") != "0" else "explicit"
        )
        wall = report.wall_time_s
        hypervolume: Optional[float] = None
        if len(report.front.objectives) == 2 and len(report.front):
            hypervolume = report.front.hypervolume()
        best = report.best()
        metrics: Dict[str, Any] = {
            "wall_time_s": round(wall, 6),
            "explored": report.explored,
            "evaluated": report.evaluated,
            "cache_hits": report.cache_hits,
            "infeasible": report.infeasible,
            "errors": report.errors,
            "rounds": report.rounds,
            "front_size": len(report.front),
            "hypervolume": hypervolume,
            "candidates_per_s": round(report.explored / wall, 2) if wall > 0 else None,
            "best_latency_us": (
                round(best.metrics["latency_us"], 3) if best is not None else None
            ),
        }
        return telemetry.RunManifest.build(
            kind="dse",
            label=self.problem.name,
            parameters=dict(resolved),
            config=config,
            metrics=metrics,
            telemetry_snapshot=telemetry_snapshot,
            budget=self.budget,
            wall_time_s=round(wall, 6),
        )

    def _run_rounds(self) -> ExplorationReport:
        """The exploration loop proper (manifest-free; see :meth:`run`)."""
        resolved = self.problem.parameters(self.parameters)
        space = self.build_space()
        strategy: SearchStrategy = make_strategy(
            self.strategy_name,
            space,
            seed=self.seed,
            objectives=self.objectives,
            **self.strategy_options,
        )
        report = ExplorationReport(
            problem=self.problem.name,
            strategy=self.strategy_name,
            objectives=self.objectives,
            front=ParetoFront(self.objectives),
        )
        config = self._config(resolved)
        seen: Dict[str, JobResult] = {}
        sequence: List[List[Any]] = []  # [candidate digest, job digest, ok]
        spent = 0
        stale_rounds = 0
        if self.resume:
            spent, stale_rounds = self._restore(config, strategy, report, seen, sequence)
        elif self.checkpoint is not None:
            self.checkpoint.reset()
        if not self.resume and self.convergence is not None:
            # Same semantics as the checkpoint: a fresh run starts a fresh
            # curve, a resumed run keeps extending the original one.
            self.convergence.reset()

        rounds_this_call = 0
        while (
            spent < self.budget
            and not strategy.exhausted
            and stale_rounds < MAX_STALE_ROUNDS
            and (self.max_rounds is None or rounds_this_call < self.max_rounds)
        ):
            budget_left = self.budget - spent
            with telemetry.timed_ns() as round_timer:
                with telemetry.span(
                    "dse.explore.round",
                    category="dse",
                    args={"round": report.rounds + 1},
                ):
                    batch = strategy.propose(budget_left)
                    if not batch:
                        if strategy.exhausted:
                            break
                        stale_rounds += 1
                        continue
                    # Digesting normalises + hashes the whole encoding; do it
                    # once per proposed candidate and reuse below (observe()
                    # needs it again).
                    digests = [candidate.digest() for candidate in batch]
                    fresh: List[Tuple[str, MappingCandidate]] = []
                    fresh_digests = set()
                    for digest, candidate in zip(digests, batch):
                        if digest in seen or digest in fresh_digests:
                            continue
                        if len(fresh) >= budget_left:
                            break
                        fresh.append((digest, candidate))
                        fresh_digests.add(digest)

                    if fresh:
                        with telemetry.span(
                            "dse.explore.score",
                            category="dse",
                            args={"candidates": len(fresh)},
                        ):
                            campaign = self.runner.run(
                                [self._spec(candidate, resolved) for _, candidate in fresh]
                            )
                        for (digest, candidate), result in zip(fresh, campaign.results):
                            seen[digest] = result
                            report.results.append(result)
                            sequence.append([digest, result.job_digest, result.ok])
                            if not result.ok:
                                report.errors += 1
                                continue
                            if not result.metrics.get("feasible"):
                                report.infeasible += 1
                                continue
                            report.front.offer(digest, result.metrics, payload=candidate)
                        report.cache_hits += campaign.cache_hits
                        report.evaluated += campaign.simulated
                        spent += len(fresh)
                        stale_rounds = 0
                    else:
                        stale_rounds += 1

                    strategy.observe(
                        [
                            Observation(
                                candidate=candidate,
                                vector=objective_vector(
                                    seen[digest].metrics, self.objectives
                                ),
                                feasible=bool(
                                    seen[digest].metrics.get("feasible", True)
                                ),
                            )
                            for digest, candidate in zip(digests, batch)
                            if digest in seen and seen[digest].ok
                        ]
                    )
            report.rounds += 1
            rounds_this_call += 1
            self._emit_round(
                self._round_record(
                    report, spent, stale_rounds, len(fresh), round_timer.elapsed_ns
                )
            )
            if self.checkpoint is not None:
                self.checkpoint.write(
                    self._snapshot(config, strategy, report, sequence, spent, stale_rounds)
                )
        return report


def front_from_store(
    store: ResultStore,
    problem: Optional[str] = None,
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
) -> Tuple[
    ParetoFront, List[Tuple[str, Mapping[str, Any]]], Set[str], Set[str], Dict[str, str]
]:
    """Rebuild a Pareto front from a result store alone (no exploration state).

    Scans every stored ``dse-eval`` record, filters to ``problem`` when given,
    and offers each successful evaluation to a fresh front.  Returns ``(front,
    entries, problems_seen, contexts_seen, evaluators)`` where ``entries``
    are the ``(candidate digest, metrics)`` pairs of every considered record
    (feasible or not, for ranked tables), ``problems_seen`` names every problem
    encountered, ``contexts_seen`` holds the canonical JSON of every distinct
    problem *parameterisation* (``items``, ``seed``, ... -- the record's
    parameters minus the candidate encoding) and ``evaluators`` maps each
    candidate digest to the scoring path that produced its record
    (``replay``/``steady``; records from before the field existed count as
    ``replay``).  Objectives are only comparable within one ``(problem,
    parameterisation)``: latency scales with the workload, so callers should
    refuse to build one front across several problems or contexts.  Mixed
    evaluators are *sound* (the modes are certified identical) but worth
    reporting, since wall-time provenance differs.
    """
    front = ParetoFront(tuple(objectives))
    entries: List[Tuple[str, Mapping[str, Any]]] = []
    problems: Set[str] = set()
    contexts: Set[str] = set()
    evaluators: Dict[str, str] = {}
    for job_digest in store.digests():
        record = store.get(job_digest)
        try:
            result = JobResult.from_record(record)
        except CampaignError:
            continue
        if result.scenario != DSE_SCENARIO or not result.ok:
            continue
        record_problem = str(result.parameters.get("problem"))
        if problem is not None and record_problem != problem:
            continue
        try:
            candidate_digest = MappingCandidate.from_parameters(result.parameters).digest()
        except ModelError:
            continue
        problems.add(record_problem)
        contexts.add(
            canonical_json(
                {
                    key: value
                    for key, value in result.parameters.items()
                    if key not in ("allocation", "orders")
                }
            )
        )
        evaluators[candidate_digest] = result.evaluator or "replay"
        entries.append((candidate_digest, result.metrics))
        front.offer(candidate_digest, result.metrics)
    return front, entries, problems, contexts, evaluators
