"""Named design problems: an application plus a bank of candidate resources.

A :class:`DesignProblem` fixes the *givens* of an exploration -- which
application is being mapped, which resources the platform could
instantiate, and which stimulus drives the evaluation -- while the
mapping itself is the unknown.  The shipped problems re-use the
applications of the paper's experiments but replace their fixed
platforms with a bank of identical processors, so that allocation
decisions trade end-to-end latency against the number of resources
instantiated (the classic cost axis of mapping DSE).

Problems are looked up by name from worker processes, so everything
here must be reconstructible from ``(name, parameters)`` alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..archmodel.application import ApplicationModel
from ..archmodel.function import AppFunction
from ..archmodel.platform import PlatformModel
from ..environment.stimulus import Stimulus
from ..errors import ModelError
from ..examples_lib.didactic import (
    build_didactic_architecture,
    didactic_stimulus,
    didactic_workloads,
)
from ..generator.chains import build_chain_architecture
from ..kernel.simtime import microseconds
from ..lte.receiver import (
    GROUP_ELIGIBILITY,
    INPUT_RELATION as LTE_INPUT_RELATION,
    build_grouped_lte_application,
    build_lte_bank,
    heterogeneous_lte_workloads,
)
from ..lte.scenario import lte_fixed_symbol_stimulus, lte_symbol_stimulus
from .pareto import DEFAULT_OBJECTIVES, Objective
from .space import DesignSpace, EligibilitySpec

__all__ = ["DesignProblem", "problem_registry", "get_problem", "problem_names"]


@dataclass(frozen=True)
class DesignProblem:
    """One named mapping-exploration problem."""

    name: str
    description: str
    #: Build the application from the problem parameters.
    application_factory: Callable[[Mapping[str, Any]], ApplicationModel]
    #: Build the bank of candidate resources from the problem parameters.
    platform_factory: Callable[[Mapping[str, Any]], PlatformModel]
    #: Build the stimuli (relation -> stimulus) from the problem parameters.
    stimuli_factory: Callable[[Mapping[str, Any]], Dict[str, Stimulus]]
    #: Parameter defaults merged under the caller's overrides.
    defaults: Mapping[str, Any]
    #: Optional allocation constraint of heterogeneous problems: builds the
    #: :data:`~repro.dse.space.EligibilitySpec` from the resolved parameters.
    eligibility_factory: Optional[Callable[[Mapping[str, Any]], EligibilitySpec]] = None
    #: The objectives an exploration of this problem minimises by default.
    objectives: Tuple[Objective, ...] = field(default=DEFAULT_OBJECTIVES)

    def parameters(self, overrides: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
        parameters = dict(self.defaults)
        parameters.update(overrides or {})
        return parameters

    def space(
        self,
        parameters: Optional[Mapping[str, Any]] = None,
        max_resources: Optional[int] = None,
        explore_orders: bool = True,
        strict: bool = True,
    ) -> DesignSpace:
        """The design space of this problem under ``parameters``."""
        resolved = self.parameters(parameters)
        eligible = (
            self.eligibility_factory(resolved)
            if self.eligibility_factory is not None
            else None
        )
        return DesignSpace(
            self.application_factory(resolved),
            self.platform_factory(resolved),
            max_resources=max_resources,
            explore_orders=explore_orders,
            strict=strict,
            eligible=eligible,
        )


def _processor_bank(name: str, count: int) -> PlatformModel:
    if count < 1:
        raise ModelError("a processor bank needs at least one processor")
    platform = PlatformModel(name)
    for index in range(count):
        platform.add_processor(f"P{index + 1}")
    return platform


def _didactic_application(parameters: Mapping[str, Any]) -> ApplicationModel:
    # The didactic builder assembles application + platform + mapping; the
    # DSE problem keeps the application and replaces the rest.
    return build_didactic_architecture().application


def _didactic_platform(parameters: Mapping[str, Any]) -> PlatformModel:
    return _processor_bank("didactic-bank", int(parameters["processors"]))


def _didactic_stimuli(parameters: Mapping[str, Any]) -> Dict[str, Stimulus]:
    return {
        "M1": didactic_stimulus(
            count=int(parameters["items"]), seed=int(parameters["seed"])
        )
    }


def _didactic_periodic_stimuli(parameters: Mapping[str, Any]) -> Dict[str, Stimulus]:
    # One fixed data size: every workload duration becomes
    # iteration-independent, which is what lets the steady-state evaluator
    # certify the periodic regime and extrapolate.
    size = int(parameters["size"])
    return {
        "M1": didactic_stimulus(
            count=int(parameters["items"]),
            min_size=size,
            max_size=size,
            seed=int(parameters["seed"]),
        )
    }


def _fork_application(parameters: Mapping[str, Any]) -> ApplicationModel:
    """One splitter feeding two independent branches with their own outputs.

    The two branches end in distinct external output relations (O1 and O2),
    which is what makes this the regression problem for multi-output latency
    scoring: a candidate that slows only the O2 branch must see its latency
    objective move.
    """
    workloads = didactic_workloads()
    application = ApplicationModel("fork")
    application.add_function(
        AppFunction("F1")
        .read("M1")
        .execute("Ti1", workloads["Ti1"])
        .write("N2")
        .write("N3")
    )
    application.add_function(
        AppFunction("F2").read("N2").execute("Ti3", workloads["Ti3"]).write("O1")
    )
    application.add_function(
        AppFunction("F3").read("N3").execute("Ti4", workloads["Ti4"]).write("O2")
    )
    return application


def _fork_platform(parameters: Mapping[str, Any]) -> PlatformModel:
    return _processor_bank("fork-bank", int(parameters["processors"]))


def _fork_stimuli(parameters: Mapping[str, Any]) -> Dict[str, Stimulus]:
    return {
        "M1": didactic_stimulus(
            count=int(parameters["items"]), seed=int(parameters["seed"])
        )
    }


def _chain_application(parameters: Mapping[str, Any]) -> ApplicationModel:
    return build_chain_architecture(int(parameters["stages"])).application


def _chain_platform(parameters: Mapping[str, Any]) -> PlatformModel:
    return _processor_bank("chain-bank", int(parameters["processors"]))


def _chain_stimuli(parameters: Mapping[str, Any]) -> Dict[str, Stimulus]:
    return {
        "L1": didactic_stimulus(
            count=int(parameters["items"]),
            period=microseconds(30),
            seed=int(parameters["seed"]),
        )
    }


def _chain_periodic_stimuli(parameters: Mapping[str, Any]) -> Dict[str, Stimulus]:
    size = int(parameters["size"])
    return {
        "L1": didactic_stimulus(
            count=int(parameters["items"]),
            period=microseconds(30),
            min_size=size,
            max_size=size,
            seed=int(parameters["seed"]),
        )
    }


def _lte_application(parameters: Mapping[str, Any]) -> ApplicationModel:
    return build_grouped_lte_application(
        heterogeneous_lte_workloads(
            processor_slowdown=float(parameters["processor_slowdown"]),
            dsp_decoder_slowdown=float(parameters["dsp_decoder_slowdown"]),
        ),
        fifo_capacity=int(parameters["fifo_capacity"]),
    )


def _lte_platform(parameters: Mapping[str, Any]) -> PlatformModel:
    return build_lte_bank(
        processors=int(parameters["processors"]),
        dsps=int(parameters["dsps"]),
        hardware=int(parameters["hardware"]),
    )


def _lte_stimuli(parameters: Mapping[str, Any]) -> Dict[str, Stimulus]:
    return {
        LTE_INPUT_RELATION: lte_symbol_stimulus(
            int(parameters["items"]), seed=int(parameters["seed"])
        )
    }


def _lte_periodic_stimuli(parameters: Mapping[str, Any]) -> Dict[str, Stimulus]:
    return {
        LTE_INPUT_RELATION: lte_fixed_symbol_stimulus(
            int(parameters["items"]),
            resource_blocks=int(parameters["resource_blocks"]),
            modulation=str(parameters["modulation"]),
        )
    }


def _lte_eligibility(parameters: Mapping[str, Any]) -> EligibilitySpec:
    return GROUP_ELIGIBILITY


#: The lte problem's objectives: end-to-end output latency, instantiated
#: resources, and the DSP load (dotted path into the per-kind utilisation
#: metrics) -- keeping DSP headroom is what motivates offloading groups onto
#: processors or the decoder hardware.
_LTE_OBJECTIVES: Tuple[Objective, ...] = (
    Objective("latency_ps", "latency"),
    Objective("resources_used", "resources"),
    Objective("kind_utilization.dsp", "DSP util"),
)


_PROBLEMS: Dict[str, DesignProblem] = {}


def _register(problem: DesignProblem) -> DesignProblem:
    if problem.name in _PROBLEMS:
        raise ModelError(f"design problem {problem.name!r} is already registered")
    _PROBLEMS[problem.name] = problem
    return problem


_register(
    DesignProblem(
        name="didactic",
        description="Fig. 1 application (F1..F4) on a bank of identical processors",
        application_factory=_didactic_application,
        platform_factory=_didactic_platform,
        stimuli_factory=_didactic_stimuli,
        defaults={"items": 40, "seed": 2014, "processors": 4},
    )
)
_register(
    DesignProblem(
        name="didactic-periodic",
        description=(
            "Fig. 1 application under a fixed-size periodic stimulus "
            "(stationary durations: the steady-state evaluator's home turf)"
        ),
        application_factory=_didactic_application,
        platform_factory=_didactic_platform,
        stimuli_factory=_didactic_periodic_stimuli,
        defaults={"items": 40, "seed": 2014, "processors": 4, "size": 60},
    )
)
_register(
    DesignProblem(
        name="fork",
        description="Splitter + two output branches (multi-output latency scoring)",
        application_factory=_fork_application,
        platform_factory=_fork_platform,
        stimuli_factory=_fork_stimuli,
        defaults={"items": 30, "seed": 2014, "processors": 3},
    )
)
_register(
    DesignProblem(
        name="lte",
        description=(
            "Grouped LTE receiver on a mixed processors/DSP/hardware bank "
            "(kind-constrained allocation, per-kind execution-time scaling)"
        ),
        application_factory=_lte_application,
        platform_factory=_lte_platform,
        stimuli_factory=_lte_stimuli,
        defaults={
            "items": 28,
            "seed": 2014,
            "processors": 2,
            "dsps": 2,
            "hardware": 1,
            "processor_slowdown": 2.5,
            "dsp_decoder_slowdown": 20.0,
            "fifo_capacity": 4,
        },
        eligibility_factory=_lte_eligibility,
        objectives=_LTE_OBJECTIVES,
    )
)
_register(
    DesignProblem(
        name="lte-periodic",
        description=(
            "Grouped LTE receiver under a pinned frame configuration "
            "(varying token attributes, constant per-symbol durations)"
        ),
        application_factory=_lte_application,
        platform_factory=_lte_platform,
        stimuli_factory=_lte_periodic_stimuli,
        defaults={
            "items": 28,
            "seed": 2014,
            "processors": 2,
            "dsps": 2,
            "hardware": 1,
            "processor_slowdown": 2.5,
            "dsp_decoder_slowdown": 20.0,
            "fifo_capacity": 4,
            "resource_blocks": 50,
            "modulation": "16QAM",
        },
        eligibility_factory=_lte_eligibility,
        objectives=_LTE_OBJECTIVES,
    )
)
_register(
    DesignProblem(
        name="chain",
        description="Table I chained stages on a bank of identical processors",
        application_factory=_chain_application,
        platform_factory=_chain_platform,
        stimuli_factory=_chain_stimuli,
        defaults={"items": 40, "seed": 2014, "stages": 2, "processors": 4},
    )
)
_register(
    DesignProblem(
        name="chain-periodic",
        description="Table I chained stages under a fixed-size periodic stimulus",
        application_factory=_chain_application,
        platform_factory=_chain_platform,
        stimuli_factory=_chain_periodic_stimuli,
        defaults={"items": 40, "seed": 2014, "stages": 2, "processors": 4, "size": 60},
    )
)


def problem_registry() -> Dict[str, DesignProblem]:
    """The registered problems, name-indexed (a copy)."""
    return dict(_PROBLEMS)


def problem_names() -> List[str]:
    return sorted(_PROBLEMS)


def get_problem(name: str) -> DesignProblem:
    try:
        return _PROBLEMS[name]
    except KeyError:
        known = ", ".join(problem_names()) or "(none)"
        raise ModelError(f"unknown design problem {name!r}; known problems: {known}") from None
