"""Computation-complexity sweeps (Fig. 5 support).

Fig. 5 of the paper measures how the *complexity of the computation
method itself* -- the number of nodes of the temporal dependency graph
traversed by ``ComputeInstant()`` -- erodes the achievable simulation
speed-up, for several sizes of the intermediate-instant vector
``X(k)``.

The experiment needs two independent knobs:

* the size of ``X(k)``, i.e. how many simulated events the equivalent
  model saves per iteration -- controlled by the architecture
  (:func:`repro.generator.chains.build_pipeline_architecture`),
* the number of nodes the computation has to traverse -- controlled by
  *padding* the automatically built graph with extra internal nodes that
  do not change any computed instant but cost evaluation time, exactly
  like a more detailed dependency graph would.

:func:`pad_equivalent_spec` implements the second knob.
"""

from __future__ import annotations

from typing import Sequence

from ..core.spec import EquivalentModelSpec
from ..errors import ModelError
from ..tdg.graph import TemporalDependencyGraph

__all__ = ["pad_graph", "pad_equivalent_spec", "DEFAULT_NODE_COUNTS", "DEFAULT_X_SIZES"]

#: Node-count axis used by the Fig. 5 reproduction (log-spaced 1 .. 2000).
DEFAULT_NODE_COUNTS: Sequence[int] = (10, 20, 50, 100, 200, 500, 1000, 2000)

#: Sizes of the X(k) vector used by the Fig. 5 reproduction (paper: 6, 10, 20, 30).
DEFAULT_X_SIZES: Sequence[int] = (6, 10, 20, 30)


def pad_graph(graph: TemporalDependencyGraph, extra_nodes: int) -> TemporalDependencyGraph:
    """Append ``extra_nodes`` dummy internal nodes to ``graph`` (in place).

    The dummy nodes form a zero-weight chain hanging off the first input
    node: they are evaluated on every iteration (so the cost of
    ``ComputeInstant()`` grows linearly with their number) but nothing
    depends on them, so every original instant keeps its exact value.
    Returns the same graph for convenience.
    """
    if extra_nodes < 0:
        raise ModelError("extra_nodes must be non-negative")
    if extra_nodes == 0:
        return graph
    inputs = graph.input_nodes
    if not inputs:
        raise ModelError("cannot pad a graph that has no input node")
    anchor = inputs[0].name
    previous = anchor
    for index in range(extra_nodes):
        name = f"pad[{index}]"
        if graph.has_node(name):
            raise ModelError(f"graph already contains padding node {name!r}")
        graph.add_internal(name, tags={"kind": "padding"})
        graph.add_arc(previous, name, delay=0, label="padding")
        previous = name
    graph.validate()
    return graph


def pad_equivalent_spec(spec: EquivalentModelSpec, target_node_count: int) -> EquivalentModelSpec:
    """Pad the spec's graph until it has ``target_node_count`` nodes (in place).

    Raises :class:`~repro.errors.ModelError` when the graph already exceeds
    the target, so sweep points below the natural graph size are reported as
    unreachable rather than silently mis-labelled.
    """
    current = spec.graph.node_count
    if target_node_count < current:
        raise ModelError(
            f"the graph already has {current} nodes; cannot shrink it to {target_node_count}"
        )
    pad_graph(spec.graph, target_node_count - current)
    return spec
