"""Synthetic architecture generators and sweep helpers for the benchmarks."""

from .chains import (
    build_chain_architecture,
    build_pipeline_architecture,
    chain_relation_count,
    stochastic_chain_workloads,
)
from .sweep import DEFAULT_NODE_COUNTS, DEFAULT_X_SIZES, pad_equivalent_spec, pad_graph

__all__ = [
    "build_chain_architecture",
    "build_pipeline_architecture",
    "chain_relation_count",
    "stochastic_chain_workloads",
    "pad_equivalent_spec",
    "pad_graph",
    "DEFAULT_NODE_COUNTS",
    "DEFAULT_X_SIZES",
]
