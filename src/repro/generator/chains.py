"""Synthetic architecture generators.

Table I of the paper evaluates the method on four "distinct architecture
models with different ratio of events": progressively larger
architectures obtained by composing the didactic stage.  This module
generates those models:

* :func:`build_chain_architecture` -- ``stages`` copies of the didactic
  example (Fig. 1) connected in series; stage ``i``'s output relation is
  stage ``i+1``'s input relation.  Each stage has its own pair of
  processing resources, so abstracting everything multiplies the number
  of saved relations (and hence the event ratio) by the number of
  stages.
* :func:`build_pipeline_architecture` -- a plain pipeline of ``length``
  functions (read, execute, write), used by the Fig. 5 sweep to control
  the size of the intermediate-instant vector ``X(k)`` independently of
  the computation-graph padding.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..archmodel import (
    AppFunction,
    ApplicationModel,
    ArchitectureModel,
    Mapping,
    PerUnitExecutionTime,
    PlatformModel,
)
from ..archmodel.workload import ExecutionTimeModel, StochasticExecutionTime
from ..errors import ModelError
from ..examples_lib.didactic import didactic_workloads
from ..kernel.simtime import Duration, microseconds, nanoseconds

__all__ = [
    "build_chain_architecture",
    "build_pipeline_architecture",
    "chain_relation_count",
    "stochastic_chain_workloads",
]

#: Execute-step names of the didactic stage, in the order they appear in Fig. 1.
CHAIN_WORKLOAD_NAMES = ("Ti1", "Tj1", "Ti2", "Ti3", "Tj3", "Ti4")


def stochastic_chain_workloads(
    seed: int,
    stage: int = 0,
    low: Duration = microseconds(1),
    high: Duration = microseconds(12),
) -> Dict[str, ExecutionTimeModel]:
    """Randomly varying workloads for one stage of a chain architecture.

    Each execute step gets its own :class:`StochasticExecutionTime` with a
    seed derived deterministically from ``seed``, the ``stage`` index and the
    step's position, so two calls with the same arguments produce workload
    models that draw identical per-iteration samples -- exactly what
    ``measure_speedup`` needs when it builds the explicit and the equivalent
    architecture from the same factory -- while different stages stay
    decorrelated.  Pass as ``stage_workloads`` to
    :func:`build_chain_architecture`; used by the Monte-Carlo campaign
    scenarios.
    """
    base = (seed * 1_000_003 + stage) * 1009
    return {
        name: StochasticExecutionTime(low=low, high=high, seed=base + index)
        for index, name in enumerate(CHAIN_WORKLOAD_NAMES)
    }


def chain_relation_count(stages: int) -> int:
    """Number of relations of a ``stages``-stage chain (5 per stage plus one)."""
    if stages < 1:
        raise ModelError("a chain needs at least one stage")
    return 5 * stages + 1


def build_chain_architecture(
    stages: int,
    workloads: Optional[Dict[str, ExecutionTimeModel]] = None,
    name: Optional[str] = None,
    stage_workloads: Optional[Callable[[int], Dict[str, ExecutionTimeModel]]] = None,
) -> ArchitectureModel:
    """Chain ``stages`` copies of the didactic stage of Fig. 1.

    Stage ``i`` (1-based) contains functions ``F1_si .. F4_si`` mapped onto
    resources ``P1_si`` (processor) and ``P2_si`` (dedicated hardware).  The
    external input relation is ``L1``, the external output relation is
    ``L{stages+1}``, and relation ``L{i+1}`` carries data from stage ``i`` to
    stage ``i+1``.

    ``workloads`` is shared by every stage; ``stage_workloads`` instead maps
    the 1-based stage index to that stage's own workload dict (needed for
    stochastic models, where sharing one memoised instance would make all
    stages draw identical samples).  The two options are mutually exclusive.
    """
    if stages < 1:
        raise ModelError("a chain needs at least one stage")
    if workloads is not None and stage_workloads is not None:
        raise ModelError("pass either workloads or stage_workloads, not both")
    shared = workloads or (didactic_workloads() if stage_workloads is None else None)
    name = name or f"chain-{stages}"

    application = ApplicationModel(name)
    platform = PlatformModel(f"{name}-platform")
    mapping = Mapping(f"{name}-mapping")

    for stage in range(1, stages + 1):
        workloads = shared if shared is not None else stage_workloads(stage)
        suffix = f"s{stage}"
        link_in = f"L{stage}"
        link_out = f"L{stage + 1}"
        m2, m3, m4, m5 = (f"M{j}_{suffix}" for j in (2, 3, 4, 5))

        application.add_function(
            AppFunction(f"F1_{suffix}")
            .read(link_in)
            .execute("Ti1", workloads["Ti1"])
            .write(m2)
            .execute("Tj1", workloads["Tj1"])
            .write(m3)
        )
        application.add_function(
            AppFunction(f"F2_{suffix}")
            .read(m2)
            .execute("Ti3", workloads["Ti3"])
            .read(m4)
            .execute("Tj3", workloads["Tj3"])
            .write(m5)
        )
        application.add_function(
            AppFunction(f"F3_{suffix}").read(m3).execute("Ti2", workloads["Ti2"]).write(m4)
        )
        application.add_function(
            AppFunction(f"F4_{suffix}").read(m5).execute("Ti4", workloads["Ti4"]).write(link_out)
        )

        platform.add_processor(f"P1_{suffix}")
        platform.add_hardware(f"P2_{suffix}")
        mapping.allocate(f"F1_{suffix}", f"P1_{suffix}")
        mapping.allocate(f"F2_{suffix}", f"P1_{suffix}")
        mapping.allocate(f"F3_{suffix}", f"P2_{suffix}")
        mapping.allocate(f"F4_{suffix}", f"P2_{suffix}")

    architecture = ArchitectureModel(name, application, platform, mapping)
    architecture.validate()
    return architecture


def build_pipeline_architecture(
    length: int,
    stage_time=microseconds(5),
    per_unit_time=nanoseconds(50),
    processors: int = 2,
    name: Optional[str] = None,
) -> ArchitectureModel:
    """A linear pipeline of ``length`` functions (read, execute, write).

    Function ``S{i}`` reads relation ``L{i}``, executes a data-size-dependent
    workload and writes relation ``L{i+1}``; functions are distributed
    round-robin over ``processors`` concurrency-1 processors.  The number of
    relations (and therefore of intermediate evolution instants) grows
    linearly with ``length``, which is how the Fig. 5 sweep controls the size
    of the ``X(k)`` vector.
    """
    if length < 1:
        raise ModelError("a pipeline needs at least one function")
    if processors < 1:
        raise ModelError("a pipeline needs at least one processor")
    name = name or f"pipeline-{length}"

    application = ApplicationModel(name)
    platform = PlatformModel(f"{name}-platform")
    mapping = Mapping(f"{name}-mapping")

    for index in range(processors):
        platform.add_processor(f"CPU{index}")

    workload = PerUnitExecutionTime(
        base=stage_time,
        per_unit=per_unit_time,
        attribute="size",
        operations_per_unit=100.0,
    )
    for index in range(length):
        function = (
            AppFunction(f"S{index}")
            .read(f"L{index}")
            .execute(f"E{index}", workload)
            .write(f"L{index + 1}")
        )
        application.add_function(function)
        mapping.allocate(f"S{index}", f"CPU{index % processors}")

    architecture = ArchitectureModel(name, application, platform, mapping)
    architecture.validate()
    return architecture
