"""Environment models: stimuli for external inputs, sinks for external outputs.

The environment is *always* simulated with ordinary kernel processes --
in the explicit baseline model and in the equivalent model alike -- so
that both observe identical input sequences and identical back-pressure
behaviour.
"""

from .sink import AlwaysReadySink, DelayedSink, Sink
from .stimulus import PeriodicStimulus, RandomSizeStimulus, Stimulus, TraceStimulus

__all__ = [
    "Sink",
    "AlwaysReadySink",
    "DelayedSink",
    "Stimulus",
    "PeriodicStimulus",
    "RandomSizeStimulus",
    "TraceStimulus",
]
