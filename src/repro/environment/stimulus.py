"""Stimulus generators (the environment's producer side).

A stimulus drives an external input relation of an architecture model:
it decides *when* the environment tries to offer the ``(k+1)``-th data
item (the paper's ``u(k)`` instants) and *which attributes* that item
carries (data size, LTE symbol parameters, ...).

The same stimulus object is given to the explicit model and to the
equivalent model so both observe exactly the same input sequence; the
generators below are therefore deterministic (the random one is seeded
and memoised per index).
"""

from __future__ import annotations

import abc
import random
from typing import Any, Callable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..errors import ModelError
from ..kernel.simtime import Duration, Time, ZERO_TIME
from ..archmodel.token import DataToken

__all__ = [
    "Stimulus",
    "PeriodicStimulus",
    "TraceStimulus",
    "RandomSizeStimulus",
]


class Stimulus(abc.ABC):
    """Produces the offer instants and tokens of one external input relation."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Total number of items the environment will offer."""

    @abc.abstractmethod
    def offer_time(self, k: int) -> Time:
        """Earliest instant at which the environment tries to offer item ``k``.

        With rendezvous back-pressure, the *actual* offer instant may be later
        (the previous exchange may not have completed yet); the environment
        process handles that.
        """

    @abc.abstractmethod
    def token(self, k: int) -> DataToken:
        """The token offered as item ``k``."""

    def offer_period_ps(self) -> Optional[int]:
        """Constant offer period in picoseconds, or ``None`` when aperiodic.

        When a stimulus returns a period ``T`` it promises ``offer_time(k) ==
        offer_time(0) + k * T`` for every ``k``; the steady-state evaluator
        relies on that promise to extrapolate the input schedule without
        enumerating it.  The default is conservative (no promise).
        """
        return None

    def items(self) -> Iterator[Tuple[Time, DataToken]]:
        """Iterate over ``(offer time, token)`` pairs."""
        for k in range(len(self)):
            yield self.offer_time(k), self.token(k)


class PeriodicStimulus(Stimulus):
    """Offer ``count`` items with a fixed period, starting at ``start``.

    ``attributes_fn(k)`` (optional) returns the attribute mapping of item
    ``k``; by default tokens carry no attributes.
    """

    def __init__(
        self,
        period: Duration,
        count: int,
        start: Time = ZERO_TIME,
        attributes_fn: Optional[Callable[[int], Mapping[str, Any]]] = None,
    ) -> None:
        if count < 1:
            raise ModelError("a stimulus must offer at least one item")
        if period.is_negative():
            raise ModelError("the stimulus period cannot be negative")
        self.period = period
        self.count = count
        self.start = start
        self._attributes_fn = attributes_fn

    def __len__(self) -> int:
        return self.count

    def offer_time(self, k: int) -> Time:
        self._check_index(k)
        return self.start + self.period * k

    def token(self, k: int) -> DataToken:
        self._check_index(k)
        attributes = self._attributes_fn(k) if self._attributes_fn else {}
        return DataToken(k, attributes)

    def offer_period_ps(self) -> Optional[int]:
        return self.period.picoseconds

    def _check_index(self, k: int) -> None:
        if not 0 <= k < self.count:
            raise ModelError(f"stimulus index {k} out of range [0, {self.count})")


class TraceStimulus(Stimulus):
    """Offer items at explicitly listed instants with explicit attributes."""

    def __init__(self, entries: Sequence[Tuple[Time, Mapping[str, Any]]]) -> None:
        if not entries:
            raise ModelError("a trace stimulus needs at least one entry")
        previous: Optional[Time] = None
        for instant, _ in entries:
            if previous is not None and instant < previous:
                raise ModelError("trace stimulus instants must be non-decreasing")
            previous = instant
        self._entries = list(entries)

    def __len__(self) -> int:
        return len(self._entries)

    def offer_time(self, k: int) -> Time:
        return self._entries[k][0]

    def token(self, k: int) -> DataToken:
        return DataToken(k, self._entries[k][1])

    @classmethod
    def from_intervals(
        cls,
        intervals: Sequence[Duration],
        attributes: Optional[Sequence[Mapping[str, Any]]] = None,
        start: Time = ZERO_TIME,
    ) -> "TraceStimulus":
        """Build a trace from inter-arrival intervals."""
        entries: List[Tuple[Time, Mapping[str, Any]]] = []
        current = start
        for index, interval in enumerate(intervals):
            current = current + interval
            attrs = attributes[index] if attributes else {}
            entries.append((current, attrs))
        return cls(entries)


class RandomSizeStimulus(Stimulus):
    """Periodic stimulus whose tokens carry a random ``size`` attribute.

    This is the reproduction's stand-in for the paper's "20000 data produced
    through relation M1 with varying data size associated".  Sizes are drawn
    uniformly from ``[min_size, max_size]`` with a private seeded RNG and are
    the same for any consumer of the stimulus instance.
    """

    def __init__(
        self,
        period: Duration,
        count: int,
        min_size: int = 1,
        max_size: int = 64,
        seed: int = 0,
        start: Time = ZERO_TIME,
    ) -> None:
        if count < 1:
            raise ModelError("a stimulus must offer at least one item")
        if min_size < 0 or max_size < min_size:
            raise ModelError("require 0 <= min_size <= max_size")
        self.period = period
        self.count = count
        self.start = start
        self.min_size = min_size
        self.max_size = max_size
        rng = random.Random(seed)
        self._sizes = [rng.randint(min_size, max_size) for _ in range(count)]

    def __len__(self) -> int:
        return self.count

    def offer_time(self, k: int) -> Time:
        if not 0 <= k < self.count:
            raise ModelError(f"stimulus index {k} out of range [0, {self.count})")
        return self.start + self.period * k

    def token(self, k: int) -> DataToken:
        if not 0 <= k < self.count:
            raise ModelError(f"stimulus index {k} out of range [0, {self.count})")
        return DataToken(k, {"size": self._sizes[k]})

    def offer_period_ps(self) -> Optional[int]:
        return self.period.picoseconds

    @property
    def sizes(self) -> Tuple[int, ...]:
        """The pre-drawn size sequence (useful for tests)."""
        return tuple(self._sizes)
