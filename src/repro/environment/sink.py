"""Sinks (the environment's consumer side).

A sink drains an external output relation of the architecture.  The
paper's experiments use an always-ready observer (the output instant
``y(k)`` is then exactly the instant the architecture offers the data);
a delayed sink is provided to exercise output back-pressure in tests
and ablations.
"""

from __future__ import annotations

import abc
from typing import Callable

from ..errors import ModelError
from ..kernel.simtime import Duration, ZERO_DURATION

__all__ = ["Sink", "AlwaysReadySink", "DelayedSink"]


class Sink(abc.ABC):
    """Consumption policy for one external output relation."""

    @abc.abstractmethod
    def delay_before_read(self, k: int) -> Duration:
        """Extra delay the environment waits before accepting item ``k``."""


class AlwaysReadySink(Sink):
    """Accept every output immediately (the paper's implicit observer)."""

    def delay_before_read(self, k: int) -> Duration:
        return ZERO_DURATION


class DelayedSink(Sink):
    """Accept item ``k`` only after an extra delay.

    ``delay`` may be a constant :class:`Duration` or a callable
    ``delay(k) -> Duration``.  Used to exercise output back-pressure.
    """

    def __init__(self, delay) -> None:
        if isinstance(delay, Duration):
            if delay.is_negative():
                raise ModelError("sink delay cannot be negative")
            self._delay_fn: Callable[[int], Duration] = lambda k: delay
        elif callable(delay):
            self._delay_fn = delay
        else:
            raise ModelError("delay must be a Duration or a callable(k) -> Duration")

    def delay_before_read(self, k: int) -> Duration:
        delay = self._delay_fn(k)
        if not isinstance(delay, Duration) or delay.is_negative():
            raise ModelError("sink delay callable must return a non-negative Duration")
        return delay
