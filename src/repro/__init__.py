"""repro -- dynamic computation of evolution instants for fast, accurate performance models.

Reproduction of S. Le Nours, A. Postula, N. W. Bergmann, *A Dynamic
Computation Method for Fast and Accurate Performance Evaluation of
Multi-Core Architectures*, DATE 2014 (DOI 10.7873/DATE.2014.302).

The library provides:

* a discrete-event simulation kernel with explicit event / context-switch
  accounting (:mod:`repro.kernel`, :mod:`repro.channels`);
* an architecture description layer -- application functions, workload
  models, platform resources, static non-preemptive mapping
  (:mod:`repro.archmodel`);
* the fully event-driven reference model and a TLM-LT quantum baseline
  (:mod:`repro.explicit`);
* the paper's contribution: (max, +) evolution-instant equations
  (:mod:`repro.maxplus`), temporal dependency graphs (:mod:`repro.tdg`)
  and the equivalent model that computes instants instead of simulating
  them (:mod:`repro.core`);
* observation of resource usage on the observation-time axis and
  accuracy comparisons (:mod:`repro.observation`);
* the experiments: synthetic chains (Table I), computation-complexity
  sweeps (Fig. 5) and the LTE receiver case study (Fig. 6)
  (:mod:`repro.generator`, :mod:`repro.lte`, :mod:`repro.analysis`);
* parallel experiment campaigns with a persistent, content-addressed
  result store (:mod:`repro.campaign`);
* mapping design-space exploration powered by the equivalent model --
  allocation and static-order search with Pareto reporting
  (:mod:`repro.dse`).

Quickstart
----------
>>> from repro import build_didactic_architecture, didactic_stimulus
>>> from repro import ExplicitArchitectureModel, EquivalentArchitectureModel
>>> architecture = build_didactic_architecture()
>>> explicit = ExplicitArchitectureModel(architecture, {"M1": didactic_stimulus(100)})
>>> _ = explicit.run()
>>> len(explicit.output_instants("M6"))
100
"""

from .analysis import SpeedupMeasurement, measure_speedup, theoretical_event_ratio
from .campaign import (
    CampaignReport,
    CampaignRunner,
    JobResult,
    JobSpec,
    ResultStore,
    Scenario,
    ScenarioRegistry,
    ScenarioSpec,
    aggregate_results,
    default_registry,
)
from .archmodel import (
    AppFunction,
    ApplicationModel,
    ArchitectureModel,
    ConstantExecutionTime,
    DataDependentExecutionTime,
    DataToken,
    Mapping,
    PerUnitExecutionTime,
    PlatformModel,
    ProcessingResource,
    StochasticExecutionTime,
    TableExecutionTime,
)
from .core import (
    EquivalentArchitectureModel,
    EquivalentProcessModel,
    InstantComputer,
    build_equivalent_spec,
)
from .dse import (
    CandidateEvaluation,
    DesignSpace,
    ExplorationReport,
    MappingCandidate,
    MappingExplorer,
    ParetoFront,
    evaluate_mapping,
)
from .environment import (
    AlwaysReadySink,
    DelayedSink,
    PeriodicStimulus,
    RandomSizeStimulus,
    TraceStimulus,
)
from .examples_lib import (
    build_didactic_architecture,
    build_paper_equation_graph,
    didactic_stimulus,
    didactic_workloads,
)
from .explicit import ExplicitArchitectureModel, LooselyTimedArchitectureModel
from .generator import build_chain_architecture, build_pipeline_architecture
from .kernel import (
    Duration,
    Event,
    KernelStats,
    SimProcess,
    Simulator,
    Time,
    microseconds,
    milliseconds,
    nanoseconds,
    picoseconds,
    seconds,
)
from .lte import build_lte_architecture, build_lte_models, fig6_observation
from .maxplus import MaxPlus, MaxPlusMatrix, MaxPlusVector
from .observation import ActivityTrace, compare_instants, compare_traces, complexity_profile
from .tdg import TDGEvaluator, TemporalDependencyGraph

__version__ = "0.1.0"

__all__ = [
    "__version__",
    # kernel
    "Simulator",
    "SimProcess",
    "Event",
    "KernelStats",
    "Time",
    "Duration",
    "picoseconds",
    "nanoseconds",
    "microseconds",
    "milliseconds",
    "seconds",
    # architecture description
    "ApplicationModel",
    "AppFunction",
    "PlatformModel",
    "ProcessingResource",
    "Mapping",
    "ArchitectureModel",
    "DataToken",
    "ConstantExecutionTime",
    "DataDependentExecutionTime",
    "PerUnitExecutionTime",
    "StochasticExecutionTime",
    "TableExecutionTime",
    # environment
    "PeriodicStimulus",
    "RandomSizeStimulus",
    "TraceStimulus",
    "AlwaysReadySink",
    "DelayedSink",
    # executors
    "ExplicitArchitectureModel",
    "LooselyTimedArchitectureModel",
    "EquivalentArchitectureModel",
    "EquivalentProcessModel",
    "InstantComputer",
    "build_equivalent_spec",
    # formalism
    "MaxPlus",
    "MaxPlusVector",
    "MaxPlusMatrix",
    "TemporalDependencyGraph",
    "TDGEvaluator",
    # observation and analysis
    "ActivityTrace",
    "compare_instants",
    "compare_traces",
    "complexity_profile",
    "SpeedupMeasurement",
    "measure_speedup",
    "theoretical_event_ratio",
    # campaigns
    "CampaignReport",
    "CampaignRunner",
    "JobResult",
    "JobSpec",
    "ResultStore",
    "Scenario",
    "ScenarioRegistry",
    "ScenarioSpec",
    "aggregate_results",
    "default_registry",
    # design-space exploration
    "CandidateEvaluation",
    "DesignSpace",
    "ExplorationReport",
    "MappingCandidate",
    "MappingExplorer",
    "ParetoFront",
    "evaluate_mapping",
    # examples and case studies
    "build_didactic_architecture",
    "build_paper_equation_graph",
    "didactic_stimulus",
    "didactic_workloads",
    "build_chain_architecture",
    "build_pipeline_architecture",
    "build_lte_architecture",
    "build_lte_models",
    "fig6_observation",
]
