"""The process-local telemetry registry and the module-level active instance.

One :class:`TelemetryRegistry` holds everything a process records:
counters, gauges, duration histograms and finished span events.  It is

* **off by default** -- the module-level helpers (:func:`count`,
  :func:`observe_ns`, :func:`gauge`, ...) check one attribute and return
  immediately when the active registry is disabled, so instrumented hot
  paths pay a single attribute load;
* **thread-safe** -- every mutation takes the registry's lock (the
  instrumented operations are microsecond-scale next to millisecond-scale
  evaluations, so contention is irrelevant);
* **process-portable** -- :meth:`TelemetryRegistry.snapshot` is plain
  JSON, and :meth:`TelemetryRegistry.merge` folds a snapshot from another
  process back in: counters sum, histograms merge bucket-wise, spans keep
  their originating ``pid``/``tid`` and are rebased onto the receiving
  registry's clock via the wall-clock epoch each snapshot carries.

:func:`collect` scopes recording to a block: it swaps in a fresh child
registry, runs the block, restores the parent and (when the parent is
recording) folds the child back in -- the mechanism by which a campaign
worker measures exactly one job and ships the delta home inside the job
record, and by which the in-process runner does the same without wiping
the coordinator's own telemetry.

Set ``REPRO_TELEMETRY=1`` to start processes with telemetry enabled
(handy for ad-hoc scripts); the CLI ``--trace`` flag and the campaign
runner enable it programmatically.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, Iterator, List, Mapping, Optional

from .metrics import DurationHistogram

__all__ = [
    "TelemetryRegistry",
    "active",
    "enable",
    "disable",
    "enabled",
    "reset",
    "snapshot",
    "merge",
    "count",
    "gauge",
    "observe_ns",
    "collect",
]

#: Snapshot format version; bumped on incompatible change.
SNAPSHOT_VERSION = 1

#: Finished-span cap per registry: a runaway instrumentation loop degrades
#: into a counted drop, never into unbounded memory.
MAX_SPAN_EVENTS = 50_000


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TELEMETRY", "").strip().lower() in ("1", "true", "yes", "on")


class TelemetryRegistry:
    """Process-local store of counters, gauges, histograms and span events."""

    def __init__(self, enabled: bool = False, max_span_events: int = MAX_SPAN_EVENTS) -> None:
        #: Read directly (unlocked) by the module-level helpers: the cheap
        #: no-op gate.  Flipping it mid-flight is safe -- the worst case is
        #: one racing record landing just after a disable.
        self.enabled = enabled
        self.max_span_events = max_span_events
        self._lock = threading.Lock()
        self._local = threading.local()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, DurationHistogram] = {}
        self._spans: List[Dict[str, Any]] = []
        self.dropped_spans = 0
        #: perf_counter origin of span timestamps, paired with the wall-clock
        #: instant it was taken -- what lets another process's spans be
        #: rebased onto this registry's timeline on merge.
        self.epoch_ns = time.perf_counter_ns()
        self.epoch_unix = time.time()

    # -- recording -----------------------------------------------------------
    def count(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe_ns(self, name: str, duration_ns: int) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = DurationHistogram()
            histogram.observe(duration_ns)

    def span_depth(self) -> int:
        """Nesting depth of the calling thread's open spans."""
        return getattr(self._local, "depth", 0)

    def push_span(self) -> int:
        depth = self.span_depth()
        self._local.depth = depth + 1
        return depth

    def pop_span(self) -> None:
        self._local.depth = max(0, self.span_depth() - 1)

    def add_span(
        self,
        name: str,
        start_ns: int,
        duration_ns: int,
        category: str = "repro",
        depth: int = 0,
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Record one finished span (``start_ns`` relative to the epoch).

        The span's duration also lands in the like-named histogram, so the
        summary exporter reports per-span aggregates even after the event
        list hits its cap.
        """
        event: Dict[str, Any] = {
            "name": name,
            "cat": category,
            "start_ns": int(start_ns),
            "dur_ns": int(duration_ns),
            "pid": os.getpid(),
            "tid": threading.get_ident() & 0xFFFFFFFF,
            "depth": depth,
        }
        if args:
            event["args"] = dict(args)
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = DurationHistogram()
            histogram.observe(duration_ns)
            if len(self._spans) < self.max_span_events:
                self._spans.append(event)
            else:
                self.dropped_spans += 1

    # -- reading -------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def counter_value(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauges(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    def histogram(self, name: str) -> Optional[DurationHistogram]:
        with self._lock:
            return self._histograms.get(name)

    def spans(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._spans)

    # -- snapshot / merge ----------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Everything recorded so far, as plain JSON types."""
        with self._lock:
            return {
                "version": SNAPSHOT_VERSION,
                "pid": os.getpid(),
                "epoch_unix": self.epoch_unix,
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: histogram.snapshot()
                    for name, histogram in self._histograms.items()
                },
                "spans": [dict(event) for event in self._spans],
                "dropped_spans": self.dropped_spans,
            }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another registry's snapshot in (typically from a worker process).

        Counters and histograms add up; gauges take the incoming value (last
        write wins); spans are appended unchanged except for a clock rebase:
        their ``start_ns`` is shifted by the wall-clock difference between the
        two epochs, so a Chrome trace exported from the merged registry shows
        coordinator and worker activity on one coherent timeline while every
        span keeps the ``pid``/``tid`` of the process that recorded it.
        """
        incoming_epoch = float(snapshot.get("epoch_unix", self.epoch_unix))
        shift_ns = int((incoming_epoch - self.epoch_unix) * 1e9)
        incoming_spans = snapshot.get("spans") or []
        with self._lock:
            for name, value in (snapshot.get("counters") or {}).items():
                self._counters[name] = self._counters.get(name, 0) + int(value)
            for name, value in (snapshot.get("gauges") or {}).items():
                self._gauges[name] = value
            for name, payload in (snapshot.get("histograms") or {}).items():
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = DurationHistogram()
                histogram.merge_snapshot(payload)
            for event in incoming_spans:
                if len(self._spans) >= self.max_span_events:
                    self.dropped_spans += len(incoming_spans) - incoming_spans.index(event)
                    break
                rebased = dict(event)
                rebased["start_ns"] = int(event.get("start_ns", 0)) + shift_ns
                self._spans.append(rebased)
            self.dropped_spans += int(snapshot.get("dropped_spans", 0))

    def reset(self) -> None:
        """Drop everything recorded and restart the clock epoch."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._spans.clear()
            self.dropped_spans = 0
            self.epoch_ns = time.perf_counter_ns()
            self.epoch_unix = time.time()

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"TelemetryRegistry({state}, {len(self._counters)} counters, "
            f"{len(self._spans)} spans)"
        )


#: The process's active registry.  Swapped (not mutated) by :func:`collect`.
_active = TelemetryRegistry(enabled=_env_enabled())


def active() -> TelemetryRegistry:
    """The registry currently recording in this process."""
    return _active


def enable() -> None:
    _active.enabled = True


def disable() -> None:
    _active.enabled = False


def enabled() -> bool:
    return _active.enabled


def reset() -> None:
    _active.reset()


def snapshot() -> Dict[str, Any]:
    return _active.snapshot()


def merge(payload: Mapping[str, Any]) -> None:
    _active.merge(payload)


def count(name: str, value: int = 1) -> None:
    registry = _active
    if registry.enabled:
        registry.count(name, value)


def gauge(name: str, value: float) -> None:
    registry = _active
    if registry.enabled:
        registry.gauge(name, value)


def observe_ns(name: str, duration_ns: int) -> None:
    registry = _active
    if registry.enabled:
        registry.observe_ns(name, duration_ns)


class collect:
    """Scope recording to a block and hand back the block's own registry.

    ``with collect(enable=True) as registry:`` swaps a fresh child registry
    in as the active one for the duration of the block; on exit the parent
    is restored and -- when the parent itself is recording -- the child's
    snapshot is folded into it, so nothing is lost on the in-process path.
    The child stays readable after the block: ``registry.snapshot()`` is the
    delta recorded inside it, which is exactly what a campaign worker ships
    back inside its job record.

    ``enable=None`` inherits the parent's enabled state.
    """

    def __init__(self, enable: Optional[bool] = None) -> None:
        self._enable = enable
        self._parent: Optional[TelemetryRegistry] = None
        self.registry: Optional[TelemetryRegistry] = None

    def __enter__(self) -> TelemetryRegistry:
        global _active
        self._parent = _active
        wanted = self._parent.enabled if self._enable is None else self._enable
        self.registry = TelemetryRegistry(enabled=wanted)
        _active = self.registry
        return self.registry

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        global _active
        assert self._parent is not None and self.registry is not None
        _active = self._parent
        if self._parent.enabled and self.registry.enabled:
            self._parent.merge(self.registry.snapshot())


def iter_span_names(payload: Mapping[str, Any]) -> Iterator[str]:
    """Distinct span names of a snapshot, in first-appearance order."""
    seen = set()
    for event in payload.get("spans") or []:
        name = event.get("name")
        if name not in seen:
            seen.add(name)
            yield name
