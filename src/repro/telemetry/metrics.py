"""Telemetry primitives: counters, gauges and duration histograms.

These are deliberately dumb value holders -- all locking, naming and
lifecycle lives in :class:`~repro.telemetry.registry.TelemetryRegistry`.
Every type knows how to snapshot itself into plain JSON types and how to
merge a snapshot produced by another process, which is what lets worker
telemetry travel inside campaign job records and aggregate on the
coordinator.

:class:`DurationHistogram` uses power-of-two nanosecond buckets: an
observation of ``v`` nanoseconds lands in bucket ``v.bit_length()``
(upper bound ``2**i`` ns).  Exponential buckets cover the whole range
from sub-microsecond counter bumps to multi-second campaign jobs with
~60 buckets, merge by plain addition, and give honest order-of-magnitude
percentiles without configuration.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

__all__ = ["DurationHistogram"]


class DurationHistogram:
    """Histogram of durations in nanoseconds with log2 buckets."""

    __slots__ = ("count", "total_ns", "min_ns", "max_ns", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total_ns = 0
        self.min_ns: Optional[int] = None
        self.max_ns: Optional[int] = None
        #: bucket index -> observation count; index ``i`` holds durations in
        #: ``(2**(i-1), 2**i]`` nanoseconds (index 0 holds exact zeros).
        self.buckets: Dict[int, int] = {}

    def observe(self, duration_ns: int) -> None:
        value = int(duration_ns)
        if value < 0:
            value = 0
        self.count += 1
        self.total_ns += value
        if self.min_ns is None or value < self.min_ns:
            self.min_ns = value
        if self.max_ns is None or value > self.max_ns:
            self.max_ns = value
        index = value.bit_length()
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0

    def quantile_ns(self, q: float) -> int:
        """Upper bucket bound of the ``q``-quantile observation (0 when empty).

        Bucket resolution makes this an order-of-magnitude estimate: the true
        value lies within a factor of two below the returned bound.
        """
        if not self.count:
            return 0
        target = max(1, int(self.count * q + 0.5))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= target:
                return 2 ** max(index, 0) if index else 0
        return self.max_ns or 0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe form (the inverse of :meth:`merge_snapshot`)."""
        return {
            "count": self.count,
            "total_ns": self.total_ns,
            "min_ns": self.min_ns,
            "max_ns": self.max_ns,
            "buckets": {str(index): count for index, count in sorted(self.buckets.items())},
        }

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another histogram's snapshot into this one (counts add up)."""
        count = int(snapshot.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.total_ns += int(snapshot.get("total_ns", 0))
        other_min = snapshot.get("min_ns")
        if other_min is not None and (self.min_ns is None or other_min < self.min_ns):
            self.min_ns = int(other_min)
        other_max = snapshot.get("max_ns")
        if other_max is not None and (self.max_ns is None or other_max > self.max_ns):
            self.max_ns = int(other_max)
        for key, bucket_count in (snapshot.get("buckets") or {}).items():
            index = int(key)
            self.buckets[index] = self.buckets.get(index, 0) + int(bucket_count)

    def __repr__(self) -> str:
        return (
            f"DurationHistogram(count={self.count}, mean={self.mean_ns / 1e6:.3f} ms)"
        )
