"""Run manifests: schema-versioned provenance records of one execution.

A :class:`RunManifest` captures everything needed to compare a run
against its own history after the process is gone: a UTC timestamp, the
package version, a platform/interpreter fingerprint, the problem
parameterisation and execution configuration (both content-digested, so
later runs can be matched apples-to-apples), the budget, the wall time,
the outcome metrics (candidates/s, front size, hypervolume, ...) and a
*folded* telemetry snapshot -- counters, cache-hit rates and
latency-histogram summaries, but never the raw span events (a manifest
is a few KB, not a trace).

Manifests append to the :class:`~repro.telemetry.ledger.RunLedger`
(JSONL, one manifest per line) and feed the regression sentinel
(:mod:`repro.telemetry.regress`) and the ``repro obs
runs/trend/diff/regressions`` commands.

The record format is schema-versioned (``repro.run-manifest/1``);
:meth:`RunManifest.from_record` refuses records written by an
incompatible future schema, and the ledger loader skips (and counts)
such lines instead of failing.
"""

from __future__ import annotations

import hashlib
import platform as platform_module
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Dict, Mapping, Optional

from ..errors import CampaignError, ModelError
from .metrics import DurationHistogram

__all__ = ["MANIFEST_SCHEMA", "RunManifest", "fold_snapshot", "platform_fingerprint"]

#: Schema tag written into every manifest record; bumped on incompatible change.
MANIFEST_SCHEMA = "repro.run-manifest/1"

#: The run kinds the stack records today.  Free-form strings are accepted
#: (the ledger is a general facility), but these are the instrumented ones.
KNOWN_KINDS = ("dse", "campaign", "benchmark")


def _canonical_json(value: Any) -> str:
    # Local import: repro.campaign.spec does not import repro.telemetry, so
    # this direction is cycle-free, but keeping it out of module scope makes
    # that independence obvious.
    from ..campaign.spec import canonical_json

    return canonical_json(value)


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _package_version() -> str:
    try:
        from .. import __version__

        return str(__version__)
    except Exception:  # pragma: no cover - defensive (partial install)
        return "0+unknown"


def platform_fingerprint() -> Dict[str, str]:
    """The interpreter/OS identity a run's wall-clock numbers depend on."""
    return {
        "python": platform_module.python_version(),
        "implementation": platform_module.python_implementation(),
        "platform": platform_module.platform(),
        "machine": platform_module.machine(),
    }


def _histogram_summary(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Compact summary of one histogram snapshot (no per-bucket detail)."""
    histogram = DurationHistogram()
    histogram.merge_snapshot(payload)
    count = histogram.count
    return {
        "count": count,
        "total_ns": histogram.total_ns,
        "mean_ns": round(histogram.mean_ns, 1),
        "min_ns": histogram.min_ns,
        "max_ns": histogram.max_ns,
        "p50_ns": histogram.quantile_ns(0.5),
        "p99_ns": histogram.quantile_ns(0.99),
    }


def fold_snapshot(snapshot: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
    """Fold a telemetry snapshot into the manifest-sized digest of itself.

    Keeps counters, gauges and per-histogram summaries (count/total/mean/
    min/max/p50/p99); drops the raw span events (their durations already
    aggregate into the like-named histograms, which is what ``repro obs
    diff`` compares span totals from -- no Chrome trace required).  Derives
    the template-cache hit rate when the compile counters are present.
    """
    if not snapshot:
        return {}
    counters = dict(snapshot.get("counters") or {})
    folded: Dict[str, Any] = {
        "counters": counters,
        "gauges": dict(snapshot.get("gauges") or {}),
        "histograms": {
            name: _histogram_summary(payload)
            for name, payload in sorted((snapshot.get("histograms") or {}).items())
        },
        "dropped_spans": int(snapshot.get("dropped_spans", 0)),
    }
    hits = int(counters.get("dse.compile.cache_hits", 0))
    misses = int(counters.get("dse.compile.cache_misses", 0))
    if hits + misses:
        folded["cache_hit_rate"] = round(hits / (hits + misses), 4)
    return folded


@dataclass
class RunManifest:
    """One run's provenance record (see the module docstring).

    ``parameters`` is the problem/scenario parameterisation (what workload
    was run), ``config`` the execution configuration (how it was run:
    strategy, seed, evaluator mode, worker count, budget, ...).  The two
    digests derived from them define comparability: the regression sentinel
    only ever compares runs whose :attr:`comparison_key` matches.
    """

    kind: str
    label: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    config: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    telemetry: Dict[str, Any] = field(default_factory=dict)
    budget: Optional[int] = None
    wall_time_s: Optional[float] = None
    created_unix: float = 0.0
    package_version: str = ""
    platform: Dict[str, str] = field(default_factory=dict)
    run_id: str = ""

    @classmethod
    def build(
        cls,
        kind: str,
        label: str,
        parameters: Optional[Mapping[str, Any]] = None,
        config: Optional[Mapping[str, Any]] = None,
        metrics: Optional[Mapping[str, Any]] = None,
        telemetry_snapshot: Optional[Mapping[str, Any]] = None,
        budget: Optional[int] = None,
        wall_time_s: Optional[float] = None,
    ) -> "RunManifest":
        """Stamp a new manifest with now, the package version and the platform."""
        manifest = cls(
            kind=str(kind),
            label=str(label),
            parameters=dict(parameters or {}),
            config=dict(config or {}),
            metrics=dict(metrics or {}),
            telemetry=fold_snapshot(telemetry_snapshot),
            budget=budget,
            wall_time_s=wall_time_s,
            created_unix=time.time(),
            package_version=_package_version(),
            platform=platform_fingerprint(),
        )
        manifest.run_id = manifest._compute_run_id()
        return manifest

    # -- identity ------------------------------------------------------------
    @property
    def created_utc(self) -> str:
        """ISO-8601 UTC timestamp of the run (second resolution)."""
        stamp = datetime.fromtimestamp(self.created_unix, tz=timezone.utc)
        return stamp.strftime("%Y-%m-%dT%H:%M:%SZ")

    @property
    def problem_digest(self) -> str:
        """Content hash of what was run: kind, label and parameterisation."""
        return _sha256(
            _canonical_json(
                {"kind": self.kind, "label": self.label, "parameters": self.parameters}
            )
        )[:16]

    @property
    def config_digest(self) -> str:
        """Content hash of how it was run (strategy, budget, workers, ...)."""
        return _sha256(_canonical_json(self.config))[:16]

    @property
    def comparison_key(self) -> str:
        """Apples-to-apples matching key for cross-run comparison."""
        return f"{self.problem_digest}:{self.config_digest}"

    def _compute_run_id(self) -> str:
        record = self.to_record()
        record.pop("run_id", None)
        return _sha256(_canonical_json(record))[:16]

    def metric(self, name: str) -> Optional[float]:
        """The named metric as a float, or None when absent/non-numeric."""
        value = self.metrics.get(name)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        return float(value)

    # -- (de)serialisation ---------------------------------------------------
    def to_record(self) -> Dict[str, Any]:
        """The JSON-safe ledger line (the inverse of :meth:`from_record`)."""
        record = {
            "schema": MANIFEST_SCHEMA,
            "run_id": self.run_id,
            "created_unix": self.created_unix,
            "created_utc": self.created_utc,
            "package_version": self.package_version,
            "platform": dict(self.platform),
            "kind": self.kind,
            "label": self.label,
            "problem_digest": self.problem_digest,
            "config_digest": self.config_digest,
            "parameters": dict(self.parameters),
            "config": dict(self.config),
            "budget": self.budget,
            "wall_time_s": self.wall_time_s,
            "metrics": dict(self.metrics),
            "telemetry": dict(self.telemetry),
        }
        try:
            _canonical_json(record)
        except CampaignError as error:
            raise ModelError(f"run manifest is not JSON-safe: {error}") from None
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "RunManifest":
        """Rebuild a manifest from a ledger line; refuses other schemas."""
        if not isinstance(record, Mapping):
            raise ModelError("a run-manifest record must be a JSON object")
        schema = record.get("schema")
        if schema != MANIFEST_SCHEMA:
            raise ModelError(
                f"unsupported run-manifest schema {schema!r} "
                f"(this build reads {MANIFEST_SCHEMA!r})"
            )
        try:
            manifest = cls(
                kind=str(record["kind"]),
                label=str(record["label"]),
                parameters=dict(record.get("parameters") or {}),
                config=dict(record.get("config") or {}),
                metrics=dict(record.get("metrics") or {}),
                telemetry=dict(record.get("telemetry") or {}),
                budget=record.get("budget"),
                wall_time_s=record.get("wall_time_s"),
                created_unix=float(record.get("created_unix", 0.0)),
                package_version=str(record.get("package_version", "")),
                platform=dict(record.get("platform") or {}),
                run_id=str(record.get("run_id", "")),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ModelError(f"malformed run-manifest record: {error}") from None
        if not manifest.run_id:
            manifest.run_id = manifest._compute_run_id()
        return manifest

    def __repr__(self) -> str:
        return (
            f"RunManifest({self.kind}/{self.label}, {self.created_utc}, "
            f"id {self.run_id[:8]})"
        )
