"""Telemetry exporters: human-readable summary and Chrome trace-event JSON.

Two consumers, two formats:

* :func:`render_summary` turns a registry snapshot into the fixed-width
  tables the rest of the CLI already speaks (counters, gauges, and
  per-name duration statistics aggregated from the histograms);
* :func:`chrome_trace` / :func:`write_chrome_trace` emit the Trace Event
  Format understood by Perfetto (https://ui.perfetto.dev) and
  ``chrome://tracing``: one complete ("ph": "X") event per finished span,
  microsecond timestamps, process/thread metadata naming each worker, and
  final counter values as one counter ("ph": "C") event per series.

The snapshot is the only input -- exporters never touch the live
registry, so a snapshot merged from many worker processes exports
exactly like a local one.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Union

from ..analysis.report import format_rows

__all__ = ["render_summary", "chrome_trace", "write_chrome_trace"]


def _format_ns(value: float) -> str:
    """Human duration: pick the unit that keeps 3 significant digits readable."""
    if value >= 1e9:
        return f"{value / 1e9:.2f} s"
    if value >= 1e6:
        return f"{value / 1e6:.2f} ms"
    if value >= 1e3:
        return f"{value / 1e3:.2f} us"
    return f"{value:.0f} ns"


def render_summary(snapshot: Mapping[str, Any]) -> str:
    """A plain-text digest of one telemetry snapshot (counters + durations)."""
    sections: List[str] = []
    counters = snapshot.get("counters") or {}
    if counters:
        rows = [{"counter": name, "value": counters[name]} for name in sorted(counters)]
        sections.append("telemetry counters:\n" + format_rows(rows))
    gauges = snapshot.get("gauges") or {}
    if gauges:
        rows = [{"gauge": name, "value": gauges[name]} for name in sorted(gauges)]
        sections.append("telemetry gauges:\n" + format_rows(rows))
    histograms = snapshot.get("histograms") or {}
    if histograms:
        rows = []
        for name in sorted(histograms):
            payload = histograms[name]
            count = int(payload.get("count", 0))
            total = int(payload.get("total_ns", 0))
            rows.append(
                {
                    "duration": name,
                    "count": count,
                    "total": _format_ns(total),
                    "mean": _format_ns(total / count) if count else "-",
                    "min": _format_ns(payload.get("min_ns") or 0) if count else "-",
                    "max": _format_ns(payload.get("max_ns") or 0) if count else "-",
                }
            )
        sections.append("telemetry durations:\n" + format_rows(rows))
    dropped = int(snapshot.get("dropped_spans", 0))
    if dropped:
        sections.append(
            f"# warning: spans dropped: {dropped} -- the span-event cap was hit, "
            "so the trace under-reports span events (the duration tables above "
            "still count every span)"
        )
    if not sections:
        return "(no telemetry recorded)"
    return "\n\n".join(sections)


def chrome_trace(snapshot: Mapping[str, Any]) -> Dict[str, Any]:
    """The snapshot as a Trace Event Format object (Perfetto-loadable)."""
    events: List[Dict[str, Any]] = []
    pids = set()
    for event in snapshot.get("spans") or []:
        pid = event.get("pid", 0)
        pids.add(pid)
        trace_event: Dict[str, Any] = {
            "name": event.get("name", "?"),
            "cat": event.get("cat", "repro"),
            "ph": "X",
            # Trace-event timestamps are in microseconds.  Spans merged from
            # worker processes were already rebased onto the coordinator's
            # epoch, so one timeline covers every process; a span whose
            # rebased start precedes the coordinator's epoch clamps to 0.
            "ts": max(0, int(event.get("start_ns", 0))) / 1e3,
            "dur": int(event.get("dur_ns", 0)) / 1e3,
            "pid": pid,
            "tid": event.get("tid", 0),
        }
        args = event.get("args")
        if args:
            trace_event["args"] = dict(args)
        events.append(trace_event)
    coordinator_pid = snapshot.get("pid", 0)
    for pid in sorted(pids):
        role = "coordinator" if pid == coordinator_pid else "worker"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro {role} (pid {pid})"},
            }
        )
    # Final counter values as one counter sample at the end of the timeline,
    # so Perfetto shows them as annotated series next to the spans.
    last_ts = max((event.get("ts", 0) + event.get("dur", 0) for event in events), default=0)
    for name in sorted(snapshot.get("counters") or {}):
        events.append(
            {
                "name": name,
                "ph": "C",
                "ts": last_ts,
                "pid": coordinator_pid,
                "tid": 0,
                "args": {"value": (snapshot.get("counters") or {})[name]},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.telemetry",
            "snapshot_version": snapshot.get("version"),
            "dropped_spans": snapshot.get("dropped_spans", 0),
        },
    }


def write_chrome_trace(path: Union[str, Path], snapshot: Mapping[str, Any]) -> Path:
    """Serialise :func:`chrome_trace` to ``path``; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(chrome_trace(snapshot), handle)
        handle.write("\n")
    return target
