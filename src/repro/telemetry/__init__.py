"""Zero-dependency instrumentation for the DSE/campaign stack (``repro.telemetry``).

The stack's hot paths -- template compilation, per-candidate
specialisation and replay, strategy proposal loops, campaign jobs --
record **counters**, **gauges**, **duration histograms** and nestable
**spans** (on ``time.perf_counter_ns``) into a process-local
:class:`TelemetryRegistry`.  Telemetry is *off by default*: every
instrumentation helper checks one flag and returns, so the disabled cost
is a single attribute load and the enabled cost is asserted to stay
under 5% on the DSE throughput benchmarks.

Snapshots are plain JSON.  Campaign worker processes measure each job in
a :func:`collect` scope and ship the delta home inside the job record;
the coordinator merges it (counters sum, histograms merge, spans keep
their originating pid and are rebased onto one timeline).  Two exporters
consume a snapshot: :func:`render_summary` (fixed-width text) and
:func:`chrome_trace` / :func:`write_chrome_trace` (Trace Event Format,
loadable in Perfetto or ``chrome://tracing``).  Per-round exploration
convergence -- hypervolume, front size, feasible ratio, candidates/s --
lands in a :class:`ConvergenceTrace` JSONL next to the result store and
renders through ``repro obs report``.

Longitudinal observability stacks on top of the point-in-time pieces:
every ``dse run``, ``campaign run`` and benchmark session writes a
schema-versioned :class:`RunManifest` (timestamp, version, platform
fingerprint, problem/config digests, outcome metrics, folded telemetry)
to an append-only :class:`RunLedger` (``.repro/ledger.jsonl``,
``REPRO_LEDGER`` overrides), and the regression sentinel
(:func:`classify_run` / :func:`latest_verdicts`) judges new runs against
the median +/- MAD of their comparable history -- surfaced as ``repro
obs runs/trend/diff/regressions``.

Quickstart
----------
>>> from repro import telemetry
>>> telemetry.enable()
>>> with telemetry.span("my.phase"):
...     telemetry.count("my.counter")
>>> snap = telemetry.snapshot()
>>> sorted(snap["counters"])
['my.counter']
"""

from .convergence import ConvergenceTrace, render_convergence
from .export import chrome_trace, render_summary, write_chrome_trace
from .ledger import (
    DEFAULT_LEDGER_PATH,
    CompactionReport,
    RunLedger,
    default_ledger_path,
    group_by_key,
)
from .manifest import MANIFEST_SCHEMA, RunManifest, fold_snapshot, platform_fingerprint
from .metrics import DurationHistogram
from .regress import (
    DEFAULT_MIN_RUNS,
    DEFAULT_SENSITIVITY,
    DEFAULT_WINDOW,
    METRIC_DIRECTIONS,
    STATUS_IMPROVED,
    STATUS_NO_BASELINE,
    STATUS_OK,
    STATUS_REGRESSED,
    MetricVerdict,
    RunVerdict,
    classify_run,
    latest_verdicts,
)
from .registry import (
    TelemetryRegistry,
    active,
    collect,
    count,
    disable,
    enable,
    enabled,
    gauge,
    iter_span_names,
    merge,
    observe_ns,
    reset,
    snapshot,
)
from .spans import span, timed_ns

__all__ = [
    "ConvergenceTrace",
    "render_convergence",
    "chrome_trace",
    "render_summary",
    "write_chrome_trace",
    "DEFAULT_LEDGER_PATH",
    "CompactionReport",
    "RunLedger",
    "default_ledger_path",
    "group_by_key",
    "MANIFEST_SCHEMA",
    "RunManifest",
    "fold_snapshot",
    "platform_fingerprint",
    "DEFAULT_MIN_RUNS",
    "DEFAULT_SENSITIVITY",
    "DEFAULT_WINDOW",
    "METRIC_DIRECTIONS",
    "STATUS_IMPROVED",
    "STATUS_NO_BASELINE",
    "STATUS_OK",
    "STATUS_REGRESSED",
    "MetricVerdict",
    "RunVerdict",
    "classify_run",
    "latest_verdicts",
    "DurationHistogram",
    "TelemetryRegistry",
    "active",
    "collect",
    "count",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "iter_span_names",
    "merge",
    "observe_ns",
    "reset",
    "snapshot",
    "span",
    "timed_ns",
]
