"""The append-only run ledger: cross-run performance history as JSONL.

Every instrumented execution -- ``dse run``, ``campaign run``, the DSE
throughput benchmark session -- appends its
:class:`~repro.telemetry.manifest.RunManifest` to one ledger file (one
JSON object per line), so the performance trajectory of the project
survives the processes that produced it.  The default location is
``.repro/ledger.jsonl`` under the current directory; set ``REPRO_LEDGER``
to move it (CI points it at a scratch path and uploads it as an
artifact).

The loader mirrors the store/checkpoint/convergence readers: corrupt
lines (a torn write from a crash) are skipped and counted in
:attr:`RunLedger.skipped_lines`, and lines whose manifest schema this
build cannot read are skipped and counted in
:attr:`RunLedger.incompatible_lines`; both are reported through the
``repro.telemetry.ledger`` logger, never raised.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..errors import ModelError
from .manifest import RunManifest

__all__ = [
    "DEFAULT_LEDGER_PATH",
    "CompactionReport",
    "RunLedger",
    "default_ledger_path",
]

_LOG = logging.getLogger("repro.telemetry.ledger")

#: Default ledger location, relative to the working directory.
DEFAULT_LEDGER_PATH = Path(".repro") / "ledger.jsonl"

#: Environment variable overriding the default ledger path.
LEDGER_ENV = "REPRO_LEDGER"


def default_ledger_path() -> Path:
    """The ledger path to use when none is given (``REPRO_LEDGER`` wins)."""
    override = os.environ.get(LEDGER_ENV, "").strip()
    if override:
        return Path(override)
    return DEFAULT_LEDGER_PATH


class RunLedger:
    """Append-only JSONL file of run manifests."""

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self._path = Path(path) if path is not None else default_ledger_path()
        self.skipped_lines = 0
        self.incompatible_lines = 0

    @property
    def path(self) -> Path:
        return self._path

    def exists(self) -> bool:
        return self._path.exists()

    def append(self, manifest: RunManifest) -> RunManifest:
        """Append one manifest (fsynced, like the result store) and return it."""
        line = json.dumps(manifest.to_record(), sort_keys=True)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        with self._path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return manifest

    def load(self) -> List[RunManifest]:
        """Every readable manifest, in file (= chronological append) order.

        Returns an empty list when the file is absent.  Corrupt JSON lines
        and incompatible-schema lines are skipped and counted, never fatal.
        """
        if not self._path.exists():
            return []
        manifests: List[RunManifest] = []
        self.skipped_lines = 0
        self.incompatible_lines = 0
        with self._path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    self.skipped_lines += 1
                    continue
                try:
                    manifests.append(RunManifest.from_record(record))
                except ModelError:
                    self.incompatible_lines += 1
                    continue
        if self.skipped_lines:
            _LOG.warning(
                "run ledger %s: skipped %d corrupt JSONL line(s); the "
                "remaining manifests were loaded normally",
                self._path,
                self.skipped_lines,
            )
        if self.incompatible_lines:
            _LOG.warning(
                "run ledger %s: skipped %d manifest(s) with an unsupported "
                "schema version (written by a different build?)",
                self._path,
                self.incompatible_lines,
            )
        return manifests

    def runs(
        self,
        kind: Optional[str] = None,
        label: Optional[str] = None,
        last: Optional[int] = None,
    ) -> List[RunManifest]:
        """Loaded manifests filtered by kind/label, optionally the last N."""
        manifests = [
            manifest
            for manifest in self.load()
            if (kind is None or manifest.kind == kind)
            and (label is None or manifest.label == label)
        ]
        if last is not None and last > 0:
            manifests = manifests[-last:]
        return manifests

    def compact(self, keep_last: int, dry_run: bool = False) -> "CompactionReport":
        """Drop all but the last ``keep_last`` runs of every comparison group.

        Groups are the regression sentinel's comparison keys (problem +
        configuration family, see :attr:`RunManifest.comparison_key`), so
        compaction never deletes the recent history any trend or verdict
        reads -- it only sheds the long tail.  The rewrite is atomic (a
        sibling temp file replaced over the original); chronological append
        order is preserved among the kept manifests.  Corrupt JSONL lines
        and manifests with an unsupported schema version cannot be carried
        over and are dropped too, counted separately in the report.  With
        ``dry_run=True`` nothing is written -- the report describes what a
        real compaction would do.
        """
        if keep_last < 1:
            raise ModelError("compaction must keep at least one run per group")
        manifests = self.load()
        keep: List[RunManifest] = []
        kept_ids = set()
        group_rows: List[Dict[str, object]] = []
        for key, group in group_by_key(manifests).items():
            kept_group = group[-keep_last:]
            kept_ids.update(id(manifest) for manifest in kept_group)
            group_rows.append(
                {
                    "key": key,
                    "kind": group[-1].kind,
                    "label": group[-1].label,
                    "runs": len(group),
                    "kept": len(kept_group),
                    "dropped": len(group) - len(kept_group),
                }
            )
        keep = [manifest for manifest in manifests if id(manifest) in kept_ids]
        report = CompactionReport(
            path=self._path,
            keep_last=keep_last,
            dry_run=dry_run,
            total=len(manifests),
            kept=len(keep),
            dropped=len(manifests) - len(keep),
            corrupt_dropped=self.skipped_lines,
            incompatible_dropped=self.incompatible_lines,
            groups=tuple(group_rows),
        )
        if dry_run or not self._path.exists():
            return report
        tmp = self._path.with_name(self._path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            for manifest in keep:
                handle.write(json.dumps(manifest.to_record(), sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self._path)
        return report

    def __len__(self) -> int:
        return len(self.load())

    def __repr__(self) -> str:
        return f"RunLedger({self._path})"


@dataclass(frozen=True)
class CompactionReport:
    """What :meth:`RunLedger.compact` did (or, under ``dry_run``, would do)."""

    path: Path
    keep_last: int
    dry_run: bool
    total: int
    kept: int
    dropped: int
    corrupt_dropped: int = 0
    incompatible_dropped: int = 0
    #: One row per comparison group: key, kind, label, runs, kept, dropped.
    groups: Tuple[Dict[str, object], ...] = ()


def group_by_key(manifests: Iterable[RunManifest]) -> Dict[str, List[RunManifest]]:
    """Manifests grouped by comparison key, each group in append order."""
    groups: Dict[str, List[RunManifest]] = {}
    for manifest in manifests:
        groups.setdefault(manifest.comparison_key, []).append(manifest)
    return groups
