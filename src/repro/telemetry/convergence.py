"""Per-round convergence traces of an exploration, persisted as JSONL.

The :class:`~repro.dse.explore.MappingExplorer` appends one JSON record
per search round -- hypervolume, front size, feasible ratio, candidates
per second, budget spent -- to a :class:`ConvergenceTrace` file living
next to the result store (mirroring the checkpoint file's placement).
Unlike the checkpoint, the trace is append-only history: it is never
rewritten, so a resumed exploration keeps extending the same curve and
the whole optimisation trajectory stays inspectable after the fact
(``repro obs report``).

Corrupt lines (a torn write from a crash) are skipped and counted, never
fatal, matching the store/checkpoint loaders; the skip is reported
through the ``repro`` package logger.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from ..analysis.report import format_rows

__all__ = ["ConvergenceTrace", "render_convergence"]

_LOG = logging.getLogger("repro.telemetry.convergence")

#: Field order of the rendered table (a record may carry more; extras are
#: ignored by the renderer and kept by the file).
_TABLE_FIELDS = (
    "round",
    "spent",
    "explored",
    "front_size",
    "hypervolume",
    "feasible_ratio",
    "candidates_per_second",
)


class ConvergenceTrace:
    """Append-only JSONL file of per-round convergence records."""

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = Path(path)
        self.skipped_lines = 0

    @property
    def path(self) -> Path:
        return self._path

    def exists(self) -> bool:
        return self._path.exists()

    def reset(self) -> None:
        """Remove the file (a fresh, non-resumed run starts a new curve)."""
        if self._path.exists():
            self._path.unlink()

    def append(self, record: Mapping[str, Any]) -> None:
        """Append one round record (plain JSON types only)."""
        line = json.dumps(dict(record), sort_keys=True)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        with self._path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")

    def load(self) -> List[Dict[str, Any]]:
        """Every parseable record, in file order (empty when absent)."""
        if not self._path.exists():
            return []
        records: List[Dict[str, Any]] = []
        self.skipped_lines = 0
        with self._path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    self.skipped_lines += 1
                    continue
                if not isinstance(record, dict):
                    self.skipped_lines += 1
                    continue
                records.append(record)
        if self.skipped_lines:
            _LOG.warning(
                "convergence trace %s: skipped %d corrupt JSONL line(s); "
                "the remaining records were loaded normally",
                self._path,
                self.skipped_lines,
            )
        return records


def render_convergence(
    records: List[Mapping[str, Any]], last: Optional[int] = None
) -> str:
    """A fixed-width table of convergence records (``repro obs report``)."""
    if not records:
        return "(no convergence records)"
    shown = records[-last:] if last is not None and last > 0 else records
    rows = []
    for record in shown:
        row: Dict[str, object] = {}
        for field in _TABLE_FIELDS:
            value = record.get(field)
            if value is None:
                row[field] = "-"
            elif field == "hypervolume":
                row[field] = f"{float(value):.4g}"
            elif field in ("feasible_ratio", "candidates_per_second"):
                row[field] = round(float(value), 2)
            else:
                row[field] = value
        rows.append(row)
    return format_rows(rows)
