"""Nestable wall-clock spans on ``time.perf_counter_ns``.

``with span("dse.compile.specialize"):`` measures the block and records a
finished span event (plus a like-named duration histogram entry) into the
active registry.  Spans nest: a per-thread depth counter tags each event,
and the Chrome trace exporter turns the events into a flame graph.

When telemetry is disabled the context manager is a shared no-op
singleton -- entering it costs one attribute check and two trivial calls,
which is what keeps instrumented hot paths within the <5% overhead
budget asserted in the benchmark harness.
"""

from __future__ import annotations

import time
from typing import Any, Mapping, Optional

from .registry import TelemetryRegistry, active

__all__ = ["span", "timed_ns"]


class _NullSpan:
    """Shared do-nothing span used while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("_registry", "_name", "_category", "_args", "_start_ns", "_depth")

    def __init__(
        self,
        registry: TelemetryRegistry,
        name: str,
        category: str,
        args: Optional[Mapping[str, Any]],
    ) -> None:
        self._registry = registry
        self._name = name
        self._category = category
        self._args = args
        self._start_ns = 0
        self._depth = 0

    def __enter__(self) -> "_Span":
        self._depth = self._registry.push_span()
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        end_ns = time.perf_counter_ns()
        registry = self._registry
        registry.pop_span()
        registry.add_span(
            self._name,
            start_ns=self._start_ns - registry.epoch_ns,
            duration_ns=end_ns - self._start_ns,
            category=self._category,
            depth=self._depth,
            args=self._args,
        )


def span(
    name: str,
    category: str = "repro",
    args: Optional[Mapping[str, Any]] = None,
):
    """A context manager timing the block as one span (no-op when disabled)."""
    registry = active()
    if not registry.enabled:
        return _NULL_SPAN
    return _Span(registry, name, category, args)


class timed_ns:
    """Measure a block's duration without recording anything.

    ``with timed_ns() as timer: ...; timer.elapsed_ns`` -- used where the
    caller wants to attach the measurement to its own record (e.g. the
    per-round convergence trace) independently of telemetry being enabled.
    """

    __slots__ = ("_start_ns", "elapsed_ns")

    def __init__(self) -> None:
        self._start_ns = 0
        self.elapsed_ns = 0

    def __enter__(self) -> "timed_ns":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.elapsed_ns = time.perf_counter_ns() - self._start_ns
