"""The regression sentinel: variance-aware cross-run metric classification.

Given a new :class:`~repro.telemetry.manifest.RunManifest` and the ledger
history, the sentinel compares each tracked metric against the **median**
of the last N *comparable* runs -- runs whose
:attr:`~repro.telemetry.manifest.RunManifest.comparison_key` matches, so
a didactic/nsga2/budget-64 run is never judged against an lte sweep --
and classifies it ``ok`` / ``regressed`` / ``improved`` using a noise
floor derived from the **median absolute deviation** (MAD) of that
baseline.

The decision rule per metric::

    threshold = sensitivity * max(1.4826 * MAD, rel_floor * |median|)
    regressed if the value is worse  than the median by more than threshold
    improved  if the value is better than the median by more than threshold

With the defaults (``sensitivity = 3``, ``rel_floor = 0.10``) the band is
provably false-positive-free for run-to-run jitter up to +/-10%: the
deviation of a jittered value from a jittered baseline median is at most
20% of the true value, while the threshold is at least
3 * 10% * 0.9 = 27% of it.  A genuine 2x slowdown (a 50% drop in
candidates/s, a 100% rise in wall time) lands far outside the band for
any realistic baseline spread (a +/-10% uniform jitter yields a MAD near
5%, hence a threshold near 30%).  Both properties are pinned by the unit
tests with seeded jitter.

Direction matters: ``candidates_per_s`` regresses *down*, ``wall_time_s``
regresses *up*.  Metrics without a registered direction are ignored by
the sentinel (they remain visible in ``repro obs runs/trend/diff``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .ledger import group_by_key
from .manifest import RunManifest

__all__ = [
    "DEFAULT_MIN_RUNS",
    "DEFAULT_SENSITIVITY",
    "DEFAULT_WINDOW",
    "METRIC_DIRECTIONS",
    "MetricVerdict",
    "RunVerdict",
    "STATUS_IMPROVED",
    "STATUS_NO_BASELINE",
    "STATUS_OK",
    "STATUS_REGRESSED",
    "classify_run",
    "latest_verdicts",
    "median",
    "median_absolute_deviation",
]

#: Consistency factor turning a MAD into a normal-equivalent sigma.
MAD_SCALE = 1.4826

#: How many threshold-widths away from the median counts as a change.
DEFAULT_SENSITIVITY = 3.0

#: Relative noise floor: deviations under this fraction of the baseline
#: median never alarm, however tight the baseline's own spread is.
DEFAULT_REL_FLOOR = 0.10

#: Baseline window: at most this many of the newest comparable runs.
DEFAULT_WINDOW = 8

#: Minimum comparable baseline runs before the sentinel renders a verdict.
DEFAULT_MIN_RUNS = 2

#: Tracked metrics and the direction that counts as *better*.  Metrics not
#: listed here are never judged (trend/diff still show them).
METRIC_DIRECTIONS: Dict[str, str] = {
    "candidates_per_s": "higher",
    "jobs_per_s": "higher",
    "hypervolume": "higher",
    "cache_hit_rate": "higher",
    "wall_time_s": "lower",
    "telemetry_overhead_fraction": "lower",
}

#: Verdict states (``no-baseline`` means not enough comparable history).
STATUS_OK = "ok"
STATUS_REGRESSED = "regressed"
STATUS_IMPROVED = "improved"
STATUS_NO_BASELINE = "no-baseline"


def median(values: Sequence[float]) -> float:
    """The median of a non-empty sequence (mean of the middle pair)."""
    if not values:
        raise ValueError("median of an empty sequence")
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[middle])
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def median_absolute_deviation(values: Sequence[float], center: Optional[float] = None) -> float:
    """The MAD of a non-empty sequence around ``center`` (default: its median)."""
    if center is None:
        center = median(values)
    return median([abs(value - center) for value in values])


@dataclass(frozen=True)
class MetricVerdict:
    """One metric's classification against its baseline."""

    metric: str
    status: str
    value: Optional[float]
    direction: str
    baseline_runs: int
    baseline_median: Optional[float] = None
    baseline_mad: Optional[float] = None
    threshold: Optional[float] = None
    delta_fraction: Optional[float] = None

    def as_row(self) -> Dict[str, object]:
        def _fmt(value: Optional[float], digits: int = 4) -> object:
            return round(value, digits) if value is not None else "-"

        return {
            "metric": self.metric,
            "status": self.status,
            "value": _fmt(self.value),
            "baseline": _fmt(self.baseline_median),
            "mad": _fmt(self.baseline_mad),
            "threshold": _fmt(self.threshold),
            "delta": (
                f"{self.delta_fraction:+.1%}" if self.delta_fraction is not None else "-"
            ),
            "runs": self.baseline_runs,
        }


@dataclass
class RunVerdict:
    """Every tracked metric's verdict for one run."""

    manifest: RunManifest
    verdicts: List[MetricVerdict]

    @property
    def regressed(self) -> bool:
        return any(verdict.status == STATUS_REGRESSED for verdict in self.verdicts)

    @property
    def improved(self) -> bool:
        return any(verdict.status == STATUS_IMPROVED for verdict in self.verdicts)

    @property
    def status(self) -> str:
        """The run's overall state (regressions dominate improvements)."""
        if self.regressed:
            return STATUS_REGRESSED
        if self.improved:
            return STATUS_IMPROVED
        if all(verdict.status == STATUS_NO_BASELINE for verdict in self.verdicts):
            return STATUS_NO_BASELINE
        return STATUS_OK

    def rows(self) -> List[Dict[str, object]]:
        prefix = {
            "run": self.manifest.run_id[:10],
            "kind": self.manifest.kind,
            "label": self.manifest.label,
        }
        return [dict(prefix, **verdict.as_row()) for verdict in self.verdicts]


def _classify_metric(
    name: str,
    direction: str,
    value: Optional[float],
    baseline: Sequence[float],
    min_runs: int,
    sensitivity: float,
    rel_floor: float,
) -> MetricVerdict:
    if value is None or len(baseline) < min_runs:
        return MetricVerdict(
            metric=name,
            status=STATUS_NO_BASELINE,
            value=value,
            direction=direction,
            baseline_runs=len(baseline),
        )
    center = median(baseline)
    mad = median_absolute_deviation(baseline, center)
    threshold = sensitivity * max(MAD_SCALE * mad, rel_floor * abs(center))
    deviation = value - center
    # ``deviation`` is signed toward *larger*; flip the reading for metrics
    # where larger is better so "worse" is one comparison either way.
    worse = -deviation if direction == "higher" else deviation
    if worse > threshold:
        status = STATUS_REGRESSED
    elif -worse > threshold:
        status = STATUS_IMPROVED
    else:
        status = STATUS_OK
    return MetricVerdict(
        metric=name,
        status=status,
        value=value,
        direction=direction,
        baseline_runs=len(baseline),
        baseline_median=center,
        baseline_mad=mad,
        threshold=threshold,
        delta_fraction=(deviation / abs(center)) if center else None,
    )


def classify_run(
    manifest: RunManifest,
    history: Iterable[RunManifest],
    metrics: Optional[Mapping[str, str]] = None,
    window: int = DEFAULT_WINDOW,
    min_runs: int = DEFAULT_MIN_RUNS,
    sensitivity: float = DEFAULT_SENSITIVITY,
    rel_floor: float = DEFAULT_REL_FLOOR,
) -> RunVerdict:
    """Judge ``manifest`` against the comparable runs in ``history``.

    ``history`` may contain anything (the whole ledger, including
    ``manifest`` itself); only earlier runs with the same comparison key
    enter the baseline, newest-first-truncated to ``window``.  ``metrics``
    maps metric name to direction (default: :data:`METRIC_DIRECTIONS`);
    only metrics the manifest actually carries are judged.
    """
    directions = dict(METRIC_DIRECTIONS if metrics is None else metrics)
    key = manifest.comparison_key
    comparable = [
        other
        for other in history
        if other.comparison_key == key
        and other.run_id != manifest.run_id
        and other.created_unix <= manifest.created_unix
    ]
    comparable.sort(key=lambda other: other.created_unix)
    baseline_runs = comparable[-window:] if window > 0 else comparable
    verdicts: List[MetricVerdict] = []
    for name in sorted(directions):
        value = manifest.metric(name)
        if value is None and all(run.metric(name) is None for run in baseline_runs):
            continue  # metric foreign to this run family
        baseline = [
            metric_value
            for metric_value in (run.metric(name) for run in baseline_runs)
            if metric_value is not None
        ]
        verdicts.append(
            _classify_metric(
                name,
                directions[name],
                value,
                baseline,
                min_runs,
                sensitivity,
                rel_floor,
            )
        )
    return RunVerdict(manifest=manifest, verdicts=verdicts)


def latest_verdicts(
    manifests: Sequence[RunManifest],
    metrics: Optional[Mapping[str, str]] = None,
    window: int = DEFAULT_WINDOW,
    min_runs: int = DEFAULT_MIN_RUNS,
    sensitivity: float = DEFAULT_SENSITIVITY,
    rel_floor: float = DEFAULT_REL_FLOOR,
) -> List[Tuple[str, RunVerdict]]:
    """The newest run of every comparison group, judged against its history.

    This is what ``repro obs regressions`` renders and gates CI on: one
    verdict per (problem x configuration) family, ``(comparison_key,
    RunVerdict)`` pairs in first-appearance order of the key.
    """
    results: List[Tuple[str, RunVerdict]] = []
    for key, group in group_by_key(manifests).items():
        newest = group[-1]
        results.append(
            (
                key,
                classify_run(
                    newest,
                    group,
                    metrics=metrics,
                    window=window,
                    min_runs=min_runs,
                    sensitivity=sensitivity,
                    rel_floor=rel_floor,
                ),
            )
        )
    return results
