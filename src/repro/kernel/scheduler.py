"""The discrete-event simulation kernel.

:class:`Simulator` plays the role of the SystemC simulation kernel in
the paper: it keeps the time-ordered queue of event notifications,
advances simulation time, and resumes the processes that wait on those
events.  Every resumption is a context switch and every scheduled
notification is a simulation event -- the two quantities the dynamic
computation method aims to reduce -- so both are counted explicitly
(see :class:`~repro.kernel.stats.KernelStats`).

The kernel follows the classic evaluate/update structure:

1. *Evaluation phase*: every ready process runs until its next wait
   request.
2. *Delta notification phase*: immediate notifications issued during
   the evaluation phase fire, possibly making further processes ready;
   if so, a new delta cycle starts at the same simulation time.
3. *Time advance*: when no process is ready and no delta notification
   is pending, the kernel pops the earliest timed entries from the
   queue, advances simulation time and fires them.

Example
-------
>>> from repro.kernel import Simulator, microseconds
>>> sim = Simulator()
>>> done = sim.create_event("done")
>>> def worker():
...     yield microseconds(10)
...     done.notify()
>>> def observer(log):
...     yield done
...     log.append(sim.now.microseconds)
>>> log = []
>>> _ = sim.spawn(worker, name="worker")
>>> _ = sim.spawn(observer, log, name="observer")
>>> _ = sim.run()
>>> log
[10.0]
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Callable, Deque, Generator, List, Optional, Tuple, Union

from ..errors import SimulationError
from .event import Event
from .process import ProcessState, SimProcess
from .simtime import Duration, Time

__all__ = ["Simulator"]

# Heap entries: (time_ps, sequence, kind, payload) where kind is one of the
# module-level constants below.  The sequence number keeps ordering stable for
# entries scheduled at the same instant.
_KIND_NOTIFY = 0
_KIND_RESUME = 1


class Simulator:
    """Event-driven simulation kernel with explicit event/context-switch accounting."""

    def __init__(self, name: str = "sim", max_delta_cycles_per_timestep: int = 100_000) -> None:
        self.name = name
        self._now_ps = 0
        self._sequence = itertools.count()
        self._heap: List[Tuple[int, int, int, object]] = []
        self._ready: Deque[SimProcess] = deque()
        self._pending_delta_notifications: List[Event] = []
        self._pending_delta_resumes: List[SimProcess] = []
        self._processes: List[SimProcess] = []
        self._max_delta_cycles_per_timestep = max_delta_cycles_per_timestep

        # statistics counters
        self._timed_notifications = 0
        self._delta_notifications = 0
        self._process_activations = 0
        self._delta_cycles = 0
        self._time_advances = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def now(self) -> Time:
        """Current simulation time."""
        return Time(self._now_ps)

    def create_event(self, name: str = "") -> Event:
        """Create a new :class:`~repro.kernel.event.Event` bound to this simulator."""
        return Event(self, name)

    def spawn(
        self,
        target: Union[Generator, Callable[..., Generator]],
        *args,
        name: Optional[str] = None,
        **kwargs,
    ) -> SimProcess:
        """Register a new simulation process.

        ``target`` may be a generator function (called with ``*args`` /
        ``**kwargs``) or an already-instantiated generator.  The process
        becomes ready and runs in the next delta cycle of the current
        simulation time (or at time zero if the simulation has not
        started yet).
        """
        if callable(target) and not hasattr(target, "send"):
            generator = target(*args, **kwargs)
        else:
            if args or kwargs:
                raise SimulationError("arguments are only accepted when spawning from a callable")
            generator = target
        process_name = (
            name or getattr(target, "__name__", None) or f"process_{len(self._processes)}"
        )
        process = SimProcess(self, process_name, generator)
        self._processes.append(process)
        process._state = ProcessState.READY
        self._pending_delta_resumes.append(process)
        return process

    @property
    def processes(self) -> Tuple[SimProcess, ...]:
        """All processes ever spawned on this simulator."""
        return tuple(self._processes)

    def stats(self):
        """Return an immutable snapshot of the kernel counters."""
        from .stats import KernelStats

        return KernelStats(
            timed_notifications=self._timed_notifications,
            delta_notifications=self._delta_notifications,
            process_activations=self._process_activations,
            delta_cycles=self._delta_cycles,
            time_advances=self._time_advances,
        )

    def run(self, until: Optional[Union[Time, Duration]] = None):
        """Run the simulation.

        Parameters
        ----------
        until:
            Optional horizon.  A :class:`Time` is an absolute instant, a
            :class:`Duration` is relative to the current simulation time.
            Without a horizon the simulation runs until no event remains
            (all processes blocked or terminated).

        Returns
        -------
        KernelStats
            Snapshot of the kernel counters after the run.
        """
        horizon_ps = self._resolve_horizon(until)
        while True:
            self._execute_delta_cycles()
            if not self._heap:
                break
            next_time_ps = self._heap[0][0]
            if horizon_ps is not None and next_time_ps > horizon_ps:
                self._now_ps = horizon_ps
                break
            self._advance_to(next_time_ps)
        if horizon_ps is not None and self._now_ps < horizon_ps and not self._heap:
            # No more activity before the horizon: simulated time still reaches it.
            self._now_ps = horizon_ps
        return self.stats()

    # ------------------------------------------------------------------
    # internal API used by Event and SimProcess
    # ------------------------------------------------------------------
    def _schedule_notification(self, event: Event, delay: Duration) -> None:
        if delay.is_zero():
            self._delta_notifications += 1
            self._pending_delta_notifications.append(event)
            return
        self._timed_notifications += 1
        entry = (self._now_ps + delay.picoseconds, next(self._sequence), _KIND_NOTIFY, event)
        heapq.heappush(self._heap, entry)

    def _schedule_timed_resume(self, process: SimProcess, delay: Duration) -> None:
        self._timed_notifications += 1
        entry = (self._now_ps + delay.picoseconds, next(self._sequence), _KIND_RESUME, process)
        heapq.heappush(self._heap, entry)

    def _schedule_delta_resume(self, process: SimProcess) -> None:
        self._pending_delta_resumes.append(process)

    def _make_ready(self, process: SimProcess) -> None:
        self._ready.append(process)

    # ------------------------------------------------------------------
    # run-loop helpers
    # ------------------------------------------------------------------
    def _resolve_horizon(self, until: Optional[Union[Time, Duration]]) -> Optional[int]:
        if until is None:
            return None
        if isinstance(until, Duration):
            return self._now_ps + until.picoseconds
        if isinstance(until, Time):
            if until.picoseconds < self._now_ps:
                raise SimulationError("cannot run until a time in the past")
            return until.picoseconds
        raise TypeError("until must be a Time, a Duration or None")

    def _execute_delta_cycles(self) -> None:
        """Run evaluation phases until no delta activity remains at the current time."""
        delta_count = 0
        while self._ready or self._pending_delta_notifications or self._pending_delta_resumes:
            delta_count += 1
            if delta_count > self._max_delta_cycles_per_timestep:
                raise SimulationError(
                    f"more than {self._max_delta_cycles_per_timestep} delta cycles at "
                    f"time {self.now}; the model probably contains a zero-delay loop"
                )
            # promote delta resumes and notifications scheduled by the previous phase
            if self._pending_delta_resumes:
                resumes, self._pending_delta_resumes = self._pending_delta_resumes, []
                self._ready.extend(resumes)
            if self._pending_delta_notifications:
                notifications, self._pending_delta_notifications = (
                    self._pending_delta_notifications,
                    [],
                )
                for event in notifications:
                    event._fire()
            if not self._ready:
                continue
            self._delta_cycles += 1
            current, self._ready = self._ready, deque()
            for process in current:
                if process.terminated:
                    continue
                self._process_activations += 1
                process._run()

    def _advance_to(self, time_ps: int) -> None:
        """Advance simulation time and fire every entry scheduled at ``time_ps``."""
        if time_ps < self._now_ps:
            raise SimulationError("event queue produced a time in the past")
        self._now_ps = time_ps
        self._time_advances += 1
        while self._heap and self._heap[0][0] == time_ps:
            _, _, kind, payload = heapq.heappop(self._heap)
            if kind == _KIND_NOTIFY:
                payload._fire()
            else:
                payload._timeout_expired()

    def __repr__(self) -> str:
        return f"Simulator({self.name!r}, now={self.now}, processes={len(self._processes)})"
