"""Exact simulation time.

The whole library measures time in **integer picoseconds**.  Using an
integer base unit has two important consequences:

* (max, +) computations performed by the dynamic computation method and
  the event instants produced by the discrete-event kernel can be
  compared with *exact equality*.  The paper's central accuracy claim
  ("evolution instants of both models ... remain the same") is verified
  in the test-suite with ``==``, not with a floating point tolerance.
* Time values are totally ordered and hashable, so they can key event
  queues and dictionaries without rounding surprises.

Two public classes are provided:

* :class:`Duration` -- a signed span of time (the weight of a temporal
  dependency arc, an execution time, a quantum, ...).
* :class:`Time` -- a point on the simulation (or observation) time axis.

``Time - Time -> Duration``, ``Time + Duration -> Time`` and
``Duration + Duration -> Duration`` behave as expected.  Convenience
constructors (:func:`picoseconds`, :func:`nanoseconds`,
:func:`microseconds`, :func:`milliseconds`, :func:`seconds`) accept
floats and round to the nearest picosecond.

Example
-------
>>> from repro.kernel.simtime import microseconds, Time
>>> t = Time.zero() + microseconds(71.42)
>>> t.picoseconds
71420000
>>> str(t)
'71.42us'
"""

from __future__ import annotations

from typing import Union

__all__ = [
    "Duration",
    "Time",
    "ZERO_DURATION",
    "ZERO_TIME",
    "picoseconds",
    "nanoseconds",
    "microseconds",
    "milliseconds",
    "seconds",
]

_PS_PER_NS = 1_000
_PS_PER_US = 1_000_000
_PS_PER_MS = 1_000_000_000
_PS_PER_S = 1_000_000_000_000

Number = Union[int, float]


def _to_ps(value: Number, scale: int) -> int:
    """Convert ``value`` expressed in a unit worth ``scale`` picoseconds to int ps."""
    if isinstance(value, bool):  # bool is an int subclass; reject it explicitly
        raise TypeError("time values must be int or float, not bool")
    if isinstance(value, int):
        return value * scale
    if isinstance(value, float):
        return round(value * scale)
    raise TypeError(f"time values must be int or float, got {type(value).__name__}")


class Duration:
    """A signed time span with picosecond resolution.

    Durations are immutable, hashable and totally ordered.  They support
    addition and subtraction with other durations, multiplication by an
    integer (repeating an execution ``n`` times), and integer division
    (splitting a span into equal slots).
    """

    __slots__ = ("_ps",)

    def __init__(self, ps: int = 0) -> None:
        if not isinstance(ps, int) or isinstance(ps, bool):
            raise TypeError("Duration() expects an integer number of picoseconds")
        self._ps = ps

    # -- constructors -------------------------------------------------
    @classmethod
    def from_picoseconds(cls, value: Number) -> "Duration":
        return cls(_to_ps(value, 1))

    @classmethod
    def from_nanoseconds(cls, value: Number) -> "Duration":
        return cls(_to_ps(value, _PS_PER_NS))

    @classmethod
    def from_microseconds(cls, value: Number) -> "Duration":
        return cls(_to_ps(value, _PS_PER_US))

    @classmethod
    def from_milliseconds(cls, value: Number) -> "Duration":
        return cls(_to_ps(value, _PS_PER_MS))

    @classmethod
    def from_seconds(cls, value: Number) -> "Duration":
        return cls(_to_ps(value, _PS_PER_S))

    @classmethod
    def zero(cls) -> "Duration":
        return _ZERO_DURATION

    # -- accessors -----------------------------------------------------
    @property
    def picoseconds(self) -> int:
        """The exact value in picoseconds."""
        return self._ps

    @property
    def nanoseconds(self) -> float:
        return self._ps / _PS_PER_NS

    @property
    def microseconds(self) -> float:
        return self._ps / _PS_PER_US

    @property
    def milliseconds(self) -> float:
        return self._ps / _PS_PER_MS

    @property
    def seconds(self) -> float:
        return self._ps / _PS_PER_S

    def is_zero(self) -> bool:
        return self._ps == 0

    def is_negative(self) -> bool:
        return self._ps < 0

    # -- arithmetic -----------------------------------------------------
    def __add__(self, other: "Duration") -> "Duration":
        if isinstance(other, Duration):
            return Duration(self._ps + other._ps)
        return NotImplemented

    def __sub__(self, other: "Duration") -> "Duration":
        if isinstance(other, Duration):
            return Duration(self._ps - other._ps)
        return NotImplemented

    def __neg__(self) -> "Duration":
        return Duration(-self._ps)

    def __mul__(self, factor: int) -> "Duration":
        if isinstance(factor, int) and not isinstance(factor, bool):
            return Duration(self._ps * factor)
        return NotImplemented

    __rmul__ = __mul__

    def __floordiv__(self, divisor: int) -> "Duration":
        if isinstance(divisor, int) and not isinstance(divisor, bool):
            return Duration(self._ps // divisor)
        return NotImplemented

    # -- comparisons ----------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, Duration) and self._ps == other._ps

    def __lt__(self, other: "Duration") -> bool:
        if isinstance(other, Duration):
            return self._ps < other._ps
        return NotImplemented

    def __le__(self, other: "Duration") -> bool:
        if isinstance(other, Duration):
            return self._ps <= other._ps
        return NotImplemented

    def __gt__(self, other: "Duration") -> bool:
        if isinstance(other, Duration):
            return self._ps > other._ps
        return NotImplemented

    def __ge__(self, other: "Duration") -> bool:
        if isinstance(other, Duration):
            return self._ps >= other._ps
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Duration", self._ps))

    def __bool__(self) -> bool:
        return self._ps != 0

    def __repr__(self) -> str:
        return f"Duration({self._ps})"

    def __str__(self) -> str:
        return _format_ps(self._ps)


class Time:
    """A point on the (simulation or observation) time axis.

    ``Time`` values are produced by the kernel (current simulation time),
    by the dynamic computation method (computed evolution instants) and
    by observation traces.  They are immutable, hashable and totally
    ordered.
    """

    __slots__ = ("_ps",)

    def __init__(self, ps: int = 0) -> None:
        if not isinstance(ps, int) or isinstance(ps, bool):
            raise TypeError("Time() expects an integer number of picoseconds")
        self._ps = ps

    # -- constructors -----------------------------------------------------
    @classmethod
    def zero(cls) -> "Time":
        return _ZERO_TIME

    @classmethod
    def from_picoseconds(cls, value: Number) -> "Time":
        return cls(_to_ps(value, 1))

    @classmethod
    def from_nanoseconds(cls, value: Number) -> "Time":
        return cls(_to_ps(value, _PS_PER_NS))

    @classmethod
    def from_microseconds(cls, value: Number) -> "Time":
        return cls(_to_ps(value, _PS_PER_US))

    @classmethod
    def from_milliseconds(cls, value: Number) -> "Time":
        return cls(_to_ps(value, _PS_PER_MS))

    @classmethod
    def from_seconds(cls, value: Number) -> "Time":
        return cls(_to_ps(value, _PS_PER_S))

    # -- accessors ---------------------------------------------------------
    @property
    def picoseconds(self) -> int:
        """The exact value in picoseconds."""
        return self._ps

    @property
    def nanoseconds(self) -> float:
        return self._ps / _PS_PER_NS

    @property
    def microseconds(self) -> float:
        return self._ps / _PS_PER_US

    @property
    def milliseconds(self) -> float:
        return self._ps / _PS_PER_MS

    @property
    def seconds(self) -> float:
        return self._ps / _PS_PER_S

    # -- arithmetic ---------------------------------------------------------
    def __add__(self, other: Duration) -> "Time":
        if isinstance(other, Duration):
            return Time(self._ps + other.picoseconds)
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other: Union["Time", Duration]):
        if isinstance(other, Time):
            return Duration(self._ps - other._ps)
        if isinstance(other, Duration):
            return Time(self._ps - other.picoseconds)
        return NotImplemented

    # -- comparisons ----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, Time) and self._ps == other._ps

    def __lt__(self, other: "Time") -> bool:
        if isinstance(other, Time):
            return self._ps < other._ps
        return NotImplemented

    def __le__(self, other: "Time") -> bool:
        if isinstance(other, Time):
            return self._ps <= other._ps
        return NotImplemented

    def __gt__(self, other: "Time") -> bool:
        if isinstance(other, Time):
            return self._ps > other._ps
        return NotImplemented

    def __ge__(self, other: "Time") -> bool:
        if isinstance(other, Time):
            return self._ps >= other._ps
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Time", self._ps))

    def __repr__(self) -> str:
        return f"Time({self._ps})"

    def __str__(self) -> str:
        return _format_ps(self._ps)


def _format_ps(ps: int) -> str:
    """Render a picosecond count using the largest unit that keeps it readable."""
    sign = "-" if ps < 0 else ""
    magnitude = abs(ps)
    scales = ((_PS_PER_S, "s"), (_PS_PER_MS, "ms"), (_PS_PER_US, "us"), (_PS_PER_NS, "ns"))
    for scale, suffix in scales:
        if magnitude >= scale:
            value = magnitude / scale
            text = f"{value:.6f}".rstrip("0").rstrip(".")
            return f"{sign}{text}{suffix}"
    return f"{sign}{magnitude}ps"


# -- convenience constructors (durations) ------------------------------------

def picoseconds(value: Number) -> Duration:
    """Return a :class:`Duration` of ``value`` picoseconds."""
    return Duration.from_picoseconds(value)


def nanoseconds(value: Number) -> Duration:
    """Return a :class:`Duration` of ``value`` nanoseconds."""
    return Duration.from_nanoseconds(value)


def microseconds(value: Number) -> Duration:
    """Return a :class:`Duration` of ``value`` microseconds."""
    return Duration.from_microseconds(value)


def milliseconds(value: Number) -> Duration:
    """Return a :class:`Duration` of ``value`` milliseconds."""
    return Duration.from_milliseconds(value)


def seconds(value: Number) -> Duration:
    """Return a :class:`Duration` of ``value`` seconds."""
    return Duration.from_seconds(value)


_ZERO_DURATION = Duration(0)
_ZERO_TIME = Time(0)

#: A zero-length duration, convenient default for optional delays.
ZERO_DURATION = _ZERO_DURATION

#: The origin of the simulation time axis.
ZERO_TIME = _ZERO_TIME
