"""Simulation events.

An :class:`Event` is the kernel-level synchronisation primitive, closely
modelled on the SystemC ``sc_event``:

* A process *waits* on an event by yielding it from its generator body.
* Any code holding a reference may *notify* the event, either after a
  duration (a "timed notification", what the paper counts as a
  simulation event) or immediately in the next delta cycle.

Events are always attached to a :class:`~repro.kernel.scheduler.Simulator`;
they are created either directly (``Event(sim, "name")``) or through
:meth:`Simulator.create_event`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Set

from ..errors import SimulationError
from .simtime import Duration, ZERO_DURATION

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from .process import SimProcess
    from .scheduler import Simulator

__all__ = ["Event"]


class Event:
    """A notifiable synchronisation point processes can wait on."""

    __slots__ = ("_simulator", "name", "_waiting", "_notify_count")

    def __init__(self, simulator: "Simulator", name: str = "") -> None:
        self._simulator = simulator
        self.name = name or f"event_{id(self):x}"
        self._waiting: Set["SimProcess"] = set()
        self._notify_count = 0

    # -- notification --------------------------------------------------------
    def notify(self, delay: Duration = ZERO_DURATION) -> None:
        """Notify the event after ``delay``.

        A zero delay produces a delta notification: waiting processes are
        resumed in the next delta cycle at the current simulation time.
        A positive delay schedules a timed notification, which is what the
        paper counts as a simulation event.
        """
        if not isinstance(delay, Duration):
            raise TypeError("notify() expects a Duration delay")
        if delay.is_negative():
            raise SimulationError(f"cannot notify event {self.name!r} in the past (delay {delay})")
        self._simulator._schedule_notification(self, delay)

    def notify_immediate(self) -> None:
        """Notify the event in the next delta cycle (equivalent to ``notify(ZERO)``)."""
        self.notify(ZERO_DURATION)

    # -- kernel interface ----------------------------------------------------
    def _add_waiter(self, process: "SimProcess") -> None:
        self._waiting.add(process)

    def _remove_waiter(self, process: "SimProcess") -> None:
        self._waiting.discard(process)

    def _fire(self) -> None:
        """Resume every waiting process.  Called by the scheduler only."""
        self._notify_count += 1
        waiting = self._waiting
        self._waiting = set()
        for process in waiting:
            process._event_fired(self)

    # -- introspection ----------------------------------------------------------
    @property
    def simulator(self) -> "Simulator":
        """The simulator the event belongs to."""
        return self._simulator

    @property
    def waiting_processes(self) -> int:
        """Number of processes currently blocked on the event."""
        return len(self._waiting)

    @property
    def notify_count(self) -> int:
        """Number of times the event actually fired."""
        return self._notify_count

    def __repr__(self) -> str:
        return f"Event({self.name!r})"
