"""Discrete-event simulation kernel.

This package is the reproduction's stand-in for the SystemC simulation
kernel used by the paper: generator-based processes, events, a
time-ordered notification queue with delta cycles, and first-class
accounting of the number of simulation events and context switches.

Public surface
--------------
* :class:`~repro.kernel.scheduler.Simulator` -- the kernel itself.
* :class:`~repro.kernel.event.Event` -- SystemC-like events.
* :class:`~repro.kernel.process.SimProcess` / :class:`~repro.kernel.process.ProcessState`.
* :class:`~repro.kernel.stats.KernelStats` -- event/context-switch counters.
* :class:`~repro.kernel.simtime.Time`, :class:`~repro.kernel.simtime.Duration`
  and the unit constructors (:func:`~repro.kernel.simtime.microseconds`, ...).
"""

from .event import Event
from .process import ProcessState, SimProcess
from .scheduler import Simulator
from .simtime import (
    Duration,
    Time,
    ZERO_DURATION,
    ZERO_TIME,
    microseconds,
    milliseconds,
    nanoseconds,
    picoseconds,
    seconds,
)
from .stats import KernelStats

__all__ = [
    "Event",
    "ProcessState",
    "SimProcess",
    "Simulator",
    "KernelStats",
    "Duration",
    "Time",
    "ZERO_DURATION",
    "ZERO_TIME",
    "picoseconds",
    "nanoseconds",
    "microseconds",
    "milliseconds",
    "seconds",
]
