"""Kernel statistics.

The benefit claimed by the paper's dynamic computation method is a
reduction of the number of *simulation events* and of the *context
switches* performed by the simulation kernel.  To make this benefit a
measured quantity (rather than an estimate), the kernel keeps explicit
counters which are exposed by :class:`KernelStats`:

* ``timed_notifications`` -- event notifications scheduled with a
  non-zero delay (what the paper calls "simulation events").
* ``delta_notifications`` -- immediate (delta-cycle) notifications.
* ``process_activations`` -- the number of times a process was resumed
  by the scheduler, i.e. the number of context switches.
* ``delta_cycles`` -- evaluation phases executed.
* ``time_advances`` -- the number of distinct simulation-time steps.

:class:`KernelStats` instances support subtraction, so a caller can
snapshot the counters before and after a run and obtain the difference.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KernelStats"]


@dataclass(frozen=True)
class KernelStats:
    """Immutable snapshot of the kernel's activity counters."""

    timed_notifications: int = 0
    delta_notifications: int = 0
    process_activations: int = 0
    delta_cycles: int = 0
    time_advances: int = 0

    @property
    def total_notifications(self) -> int:
        """Total number of event notifications handled by the kernel."""
        return self.timed_notifications + self.delta_notifications

    def __sub__(self, other: "KernelStats") -> "KernelStats":
        if not isinstance(other, KernelStats):
            return NotImplemented
        return KernelStats(
            timed_notifications=self.timed_notifications - other.timed_notifications,
            delta_notifications=self.delta_notifications - other.delta_notifications,
            process_activations=self.process_activations - other.process_activations,
            delta_cycles=self.delta_cycles - other.delta_cycles,
            time_advances=self.time_advances - other.time_advances,
        )

    def as_dict(self) -> dict:
        """Return the counters as a plain dictionary (handy for reports)."""
        return {
            "timed_notifications": self.timed_notifications,
            "delta_notifications": self.delta_notifications,
            "total_notifications": self.total_notifications,
            "process_activations": self.process_activations,
            "delta_cycles": self.delta_cycles,
            "time_advances": self.time_advances,
        }
