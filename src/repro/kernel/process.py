"""Simulation processes.

A simulation process is an ordinary Python *generator function*: the
body runs until it needs to let simulated time pass (or wait for a
synchronisation), at which point it ``yield``s a wait request to the
kernel.  This mirrors the coroutine behaviour of SystemC ``SC_THREAD``
processes, where the equivalent operation is the ``wait()`` statement
and each resumption costs a context switch in the simulation kernel.

Supported wait requests (the value yielded by the generator):

``Duration``
    Resume the process after the given amount of simulated time.

``Event``
    Resume the process when the event is notified.  The event instance
    is sent back into the generator, which is convenient when waiting
    on several alternatives.

``tuple``/``list``/``set`` of ``Event``
    Resume when *any* of the events is notified (the firing event is
    sent back into the generator).

``None``
    Resume in the next delta cycle (yield the processor without letting
    simulated time advance).

Example
-------
>>> def producer(sim, ev):
...     yield microseconds(5)      # consume 5 us of simulated time
...     ev.notify()                # wake up whoever waits on ev
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Generator, Iterable, Union

from ..errors import SimulationError
from .event import Event
from .simtime import Duration

if TYPE_CHECKING:  # pragma: no cover
    from .scheduler import Simulator

__all__ = ["ProcessState", "SimProcess", "WaitRequest"]

WaitRequest = Union[Duration, Event, Iterable[Event], None]


class ProcessState(enum.Enum):
    """Lifecycle states of a :class:`SimProcess`."""

    CREATED = "created"
    READY = "ready"
    WAITING = "waiting"
    TERMINATED = "terminated"
    FAULTED = "faulted"


class SimProcess:
    """A kernel-scheduled coroutine wrapping a generator.

    Instances are created by :meth:`Simulator.spawn`; user code normally
    never instantiates this class directly.
    """

    __slots__ = (
        "simulator",
        "name",
        "_generator",
        "_state",
        "_pending_events",
        "_send_value",
        "activation_count",
    )

    def __init__(self, simulator: "Simulator", name: str, generator: Generator) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process {name!r} must be built from a generator function "
                f"(got {type(generator).__name__}); did you forget a 'yield'?"
            )
        self.simulator = simulator
        self.name = name
        self._generator = generator
        self._state = ProcessState.CREATED
        self._pending_events: tuple = ()
        self._send_value = None
        self.activation_count = 0

    # -- introspection ----------------------------------------------------
    @property
    def state(self) -> ProcessState:
        """Current lifecycle state."""
        return self._state

    @property
    def terminated(self) -> bool:
        """True once the process body returned or raised."""
        return self._state in (ProcessState.TERMINATED, ProcessState.FAULTED)

    # -- kernel interface ----------------------------------------------------
    def _event_fired(self, event: Event) -> None:
        """Called by an event when it fires while this process waits on it."""
        for other in self._pending_events:
            if other is not event:
                other._remove_waiter(self)
        self._pending_events = ()
        self._send_value = event
        self._state = ProcessState.READY
        self.simulator._make_ready(self)

    def _timeout_expired(self) -> None:
        """Called by the scheduler when a timed wait elapses."""
        self._send_value = None
        self._state = ProcessState.READY
        self.simulator._make_ready(self)

    def _run(self) -> None:
        """Advance the generator until its next wait request (or termination)."""
        self.activation_count += 1
        send_value, self._send_value = self._send_value, None
        try:
            request = self._generator.send(send_value)
        except StopIteration:
            self._state = ProcessState.TERMINATED
            return
        except Exception:
            self._state = ProcessState.FAULTED
            raise
        self._handle_request(request)

    def _handle_request(self, request: WaitRequest) -> None:
        if request is None:
            self._state = ProcessState.READY
            self.simulator._schedule_delta_resume(self)
            return
        if isinstance(request, Duration):
            if request.is_negative():
                raise SimulationError(f"process {self.name!r} waited for a negative duration")
            self._state = ProcessState.WAITING
            self.simulator._schedule_timed_resume(self, request)
            return
        if isinstance(request, Event):
            self._wait_on_events((request,))
            return
        if isinstance(request, (tuple, list, set, frozenset)):
            events = tuple(request)
            if not events or not all(isinstance(item, Event) for item in events):
                raise SimulationError(
                    f"process {self.name!r} yielded an invalid wait request: "
                    "collections must contain only Event instances and be non-empty"
                )
            self._wait_on_events(events)
            return
        raise SimulationError(
            f"process {self.name!r} yielded an unsupported wait request "
            f"of type {type(request).__name__}"
        )

    def _wait_on_events(self, events: tuple) -> None:
        self._state = ProcessState.WAITING
        self._pending_events = events
        for event in events:
            event._add_waiter(self)

    def __repr__(self) -> str:
        return f"SimProcess({self.name!r}, state={self._state.value})"
