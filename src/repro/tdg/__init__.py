"""Temporal dependency graphs.

The graph representation of the (max, +) evolution equations: nodes are
evolution instants, arcs are time lags (execution durations) and
synchronisations, and traversing the graph computes the instants of one
iteration -- the paper's ``ComputeInstant()`` action.
"""

from .arc import DependencyArc
from .evaluator import TDGEvaluator
from .graph import TemporalDependencyGraph
from .node import InstantNode, NodeKind

__all__ = [
    "DependencyArc",
    "TDGEvaluator",
    "TemporalDependencyGraph",
    "InstantNode",
    "NodeKind",
]
