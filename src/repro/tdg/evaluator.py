"""Per-iteration evaluation of a temporal dependency graph.

The :class:`TDGEvaluator` is the computational heart of
``ComputeInstant()``: given the input instants of iteration ``k`` it
traverses the graph in topological order and computes every
intermediate and output instant, in zero simulation time.  Values are
plain integers (picoseconds) with ``None`` standing for ε (the instant
has not occurred / no dependency has fired yet), so the inner loop is
cheap -- important because the paper's Fig. 5 measures how the cost of
this very computation erodes the simulation speed-up.

History handling
----------------
Delayed dependencies (``x(k-d)``) only need the last ``max_delay``
iterations, so values are kept in small per-node ring buffers.  Nodes
whose complete history is needed -- boundary outputs checked for
accuracy, instants used to rebuild resource usage -- can be *recorded*
(``record_nodes`` / ``record_all``), in which case the full value list
is retained.

Boundary feedback
-----------------
``override_value()`` lets the equivalent model replace a computed value
with the instant actually observed on the simulator (e.g. when an
external consumer accepts an output later than computed); subsequent
iterations then use the corrected value.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from ..errors import ComputationError
from ..kernel.simtime import Time
from .graph import TemporalDependencyGraph
from .node import InstantNode

__all__ = ["TDGEvaluator"]

InstantListener = Callable[[int, InstantNode, Optional[int]], None]


class TDGEvaluator:
    """Stateful evaluator computing evolution instants iteration by iteration."""

    def __init__(
        self,
        graph: TemporalDependencyGraph,
        record_nodes: Optional[Iterable[str]] = None,
        record_all: bool = False,
    ) -> None:
        graph.validate()
        self.graph = graph
        self._nodes = list(graph.nodes)
        self._index_of = {node.name: node.index for node in self._nodes}
        self._ring_size = graph.max_delay + 1
        node_count = len(self._nodes)
        # ring[i][k % ring_size] holds the value of node i at iteration k
        self._ring: List[List[Optional[int]]] = [
            [None] * self._ring_size for _ in range(node_count)
        ]
        self._current: List[Optional[int]] = [None] * node_count
        self._iteration = 0

        record_set = set(record_nodes or [])
        unknown = record_set - set(self._index_of)
        if unknown:
            raise ComputationError(f"cannot record unknown nodes: {sorted(unknown)}")
        if record_all:
            record_set = set(self._index_of)
        self._recorded: Dict[str, List[Optional[int]]] = {name: [] for name in record_set}

        self._listeners: List[InstantListener] = []

        # Pre-compile the evaluation plan: for every computed node (in
        # topological order) the list of (source index, delay, constant weight
        # or callable) triples of its incoming arcs.
        self._plan: List[Tuple[int, List[Tuple[int, int, Optional[int], Any]]]] = []
        for node in graph.topological_order():
            if node.is_input:
                continue
            incoming = []
            for arc in graph.arcs_into(node):
                if arc.is_constant:
                    constant: Optional[int] = arc.constant_weight.picoseconds
                    weight_fn = None
                else:
                    constant = None
                    # Trusted weight objects expose an integer fast path that
                    # skips the per-call Duration validation of weight_ps.
                    weight_fn = getattr(arc.weight_callable, "weight_ps", None) or arc.weight_ps
                incoming.append((arc.source.index, arc.delay, constant, weight_fn))
            self._plan.append((node.index, incoming))

        self._input_indices = [node.index for node in graph.input_nodes]
        self._output_nodes = list(graph.output_nodes)

    # ------------------------------------------------------------------
    # observers
    # ------------------------------------------------------------------
    def add_listener(self, listener: InstantListener) -> None:
        """Register a callback invoked as ``listener(k, node, value_ps)`` for every node."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    @property
    def iteration(self) -> int:
        """Number of iterations evaluated so far (the next call computes this index)."""
        return self._iteration

    def step(
        self,
        inputs: Mapping[str, Optional[int]],
        context: Optional[Mapping[str, Any]] = None,
    ) -> Dict[str, Optional[int]]:
        """Compute iteration ``k = self.iteration`` and return the output instants.

        ``inputs`` maps every input-node name to its instant in integer
        picoseconds (or ``None`` for ε).  ``context`` is forwarded to
        data-dependent arc weights.
        """
        k = self._iteration
        context = context if context is not None else {}
        current = self._current
        ring = self._ring
        ring_slot = k % self._ring_size

        for index in range(len(current)):
            current[index] = None
        for node_index in self._input_indices:
            name = self._nodes[node_index].name
            if name not in inputs:
                raise ComputationError(
                    f"missing input instant for node {name!r} at iteration {k}"
                )
            current[node_index] = inputs[name]

        for node_index, incoming in self._plan:
            best: Optional[int] = None
            for source_index, delay, constant, weight_fn in incoming:
                if delay == 0:
                    source_value = current[source_index]
                else:
                    source_iteration = k - delay
                    if source_iteration < 0:
                        source_value = None
                    else:
                        source_value = ring[source_index][source_iteration % self._ring_size]
                if source_value is None:
                    continue
                weight = constant if constant is not None else weight_fn(k, context)
                candidate = source_value + weight
                if best is None or candidate > best:
                    best = candidate
            current[node_index] = best

        for node_index, value in enumerate(current):
            ring[node_index][ring_slot] = value
        for name, values in self._recorded.items():
            values.append(current[self._index_of[name]])
        if self._listeners:
            for node in self._nodes:
                value = current[node.index]
                for listener in self._listeners:
                    listener(k, node, value)

        self._iteration = k + 1
        return {node.name: current[node.index] for node in self._output_nodes}

    def peek_delayed(self, name: str) -> Optional[int]:
        """Evaluate node ``name`` for the *upcoming* iteration using only delayed arcs.

        The equivalent model uses this to know, before accepting the next
        input item, when the abstracted consumer would be ready for it
        (equation (1)'s ``x_M4(k-1)``-style terms).  The node must only have
        arcs with ``delay >= 1``; a zero-delay arc would require values of the
        iteration that has not been computed yet.
        Returns ``None`` (ε) when no dependency has produced a value yet,
        i.e. there is no constraint.
        """
        index = self._require_node(name)
        k = self._iteration
        best: Optional[int] = None
        for arc in self.graph.arcs_into(self._nodes[index]):
            if arc.delay == 0:
                raise ComputationError(
                    f"peek_delayed({name!r}) requires delayed arcs only, but the arc from "
                    f"{arc.source.name!r} has delay 0"
                )
            source_iteration = k - arc.delay
            if source_iteration < 0:
                continue
            source_value = self._ring[arc.source.index][source_iteration % self._ring_size]
            if source_value is None:
                continue
            candidate = source_value + arc.weight_ps(k, {})
            if best is None or candidate > best:
                best = candidate
        return best

    def value(self, name: str, k: Optional[int] = None) -> Optional[int]:
        """Return the instant of node ``name`` at iteration ``k`` (default: last computed).

        Only the last ``max_delay + 1`` iterations are available unless the
        node is recorded.
        """
        index = self._require_node(name)
        if self._iteration == 0:
            raise ComputationError("no iteration has been evaluated yet")
        if k is None:
            k = self._iteration - 1
        if k < 0 or k >= self._iteration:
            raise ComputationError(f"iteration {k} has not been evaluated")
        if name in self._recorded:
            return self._recorded[name][k]
        if k < self._iteration - self._ring_size:
            raise ComputationError(
                f"iteration {k} of node {name!r} is no longer buffered; add it to "
                "record_nodes to keep its full history"
            )
        return self._ring[index][k % self._ring_size]

    def recorded(self, name: str) -> List[Optional[int]]:
        """Full value history of a recorded node."""
        if name not in self._recorded:
            raise ComputationError(f"node {name!r} is not recorded")
        return list(self._recorded[name])

    def recorded_times(self, name: str) -> List[Optional[Time]]:
        """Full value history of a recorded node, as :class:`Time` objects."""
        return [None if value is None else Time(value) for value in self.recorded(name)]

    def last_values(self) -> Dict[str, Optional[int]]:
        """All node values of the most recently evaluated iteration."""
        if self._iteration == 0:
            raise ComputationError("no iteration has been evaluated yet")
        return {node.name: self._current[node.index] for node in self._nodes}

    def values_snapshot(self) -> List[Optional[int]]:
        """All node values of the most recently evaluated iteration, by node index.

        The cheap (list-copy, no dict) form of :meth:`last_values`; the
        steady-state detector compares consecutive snapshots every iteration,
        so this must not dominate the cost of :meth:`step` itself.
        """
        if self._iteration == 0:
            raise ComputationError("no iteration has been evaluated yet")
        return list(self._current)

    def extend_recorded(self, extra: int, delta_ps: int) -> None:
        """Append ``extra`` arithmetic continuations to every recorded history.

        Each recorded node's next value is its last value plus ``delta_ps``,
        then the one after adds another ``delta_ps``, and so on -- the exact
        continuation of a system whose whole state has entered the periodic
        regime with drift ``delta_ps`` per iteration.  The iteration counter
        advances accordingly, but the ring buffers are *not* extended: after
        this call the evaluator is only good for reading recorded histories,
        not for further :meth:`step` calls.
        """
        if extra < 0:
            raise ComputationError("cannot extend recorded histories by a negative count")
        if self._iteration == 0:
            raise ComputationError("no iteration has been evaluated yet")
        for values in self._recorded.values():
            last = values[-1] if values else None
            if last is None:
                raise ComputationError(
                    "cannot extrapolate a recorded node whose last value is ε"
                )
            if delta_ps:
                values.extend(range(last + delta_ps, last + delta_ps * (extra + 1), delta_ps))
            else:
                values.extend([last] * extra)
        self._iteration += extra

    def override_value(self, name: str, k: int, value: Optional[int]) -> None:
        """Replace the stored value of node ``name`` at iteration ``k``.

        Used by the equivalent model to feed back instants actually observed
        on the simulator (boundary corrections).  Only iterations still held
        in the ring buffer can be overridden.
        """
        index = self._require_node(name)
        if k < 0 or k >= self._iteration:
            raise ComputationError(f"cannot override iteration {k}: it has not been evaluated")
        if k < self._iteration - self._ring_size:
            raise ComputationError(
                f"cannot override iteration {k}: it is no longer buffered "
                f"(ring size {self._ring_size})"
            )
        self._ring[index][k % self._ring_size] = value
        if k == self._iteration - 1:
            self._current[index] = value
        if name in self._recorded:
            self._recorded[name][k] = value

    def _require_node(self, name: str) -> int:
        try:
            return self._index_of[name]
        except KeyError:
            raise ComputationError(f"unknown node {name!r}") from None
