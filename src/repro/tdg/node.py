"""Temporal dependency graph nodes.

Each node of a temporal dependency graph represents one family of
evolution instants ``x(k)`` -- an instant at which the usage of a
platform resource changes, indexed by the iteration counter ``k``
(Section III-C of the paper).  Nodes come in three kinds:

* ``INPUT`` -- the value is injected by the surrounding simulation
  (e.g. the instant ``u(k)`` at which the environment actually offered
  the ``(k+1)``-th data item, or the actual exchange instant on a
  boundary relation).  Input nodes have no incoming arcs.
* ``INTERNAL`` -- computed from other instants; these are the
  intermediate instants whose events the method saves.
* ``OUTPUT`` -- computed like internal nodes but exported by the
  equivalent model, which schedules a real simulation event at the
  computed value (the ``y(k)`` instants).

Nodes may carry a free-form ``tags`` mapping.  The architecture-to-TDG
builder (:mod:`repro.core.builder`) uses tags to remember which
resource/function/step an instant belongs to so resource usage can be
reconstructed on the observation-time axis.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Mapping, Optional

__all__ = ["NodeKind", "InstantNode"]


class NodeKind(enum.Enum):
    """Role of a node in the temporal dependency graph."""

    INPUT = "input"
    INTERNAL = "internal"
    OUTPUT = "output"


class InstantNode:
    """One evolution-instant family ``x(k)`` in a temporal dependency graph."""

    __slots__ = ("name", "kind", "index", "tags")

    def __init__(
        self,
        name: str,
        kind: NodeKind = NodeKind.INTERNAL,
        index: int = -1,
        tags: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        #: Position of the node in the graph's node list (set by the graph).
        self.index = index
        self.tags: Dict[str, Any] = dict(tags or {})

    @property
    def is_input(self) -> bool:
        return self.kind is NodeKind.INPUT

    @property
    def is_output(self) -> bool:
        return self.kind is NodeKind.OUTPUT

    @property
    def is_internal(self) -> bool:
        return self.kind is NodeKind.INTERNAL

    def __repr__(self) -> str:
        return f"InstantNode({self.name!r}, {self.kind.value})"
