"""Temporal dependency graph arcs.

An arc expresses one term of a (max, +) evolution equation:

    x_dst(k)  >=  x_src(k - delay) ⊗ w(k)

* ``delay`` is the iteration lag (0 for same-iteration dependencies,
  1 for the ``x(k-1)`` terms of equations (1)-(6), ...).
* ``w(k)`` is the arc weight: either a constant
  :class:`~repro.kernel.simtime.Duration` (possibly zero -- the paper's
  identity element ``e``) or a callable ``weight(k, context)`` returning
  a :class:`Duration`, which is how data-dependent execution times such
  as ``Ti1(k)`` enter the graph.  ``context`` is the per-iteration
  context assembled by the evaluator (it contains at least the input
  tokens of iteration ``k``).

Internally the weight is normalised to integer picoseconds so that the
per-iteration evaluation loop only touches plain integers.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional, Union

from ..errors import GraphError
from ..kernel.simtime import Duration
from .node import InstantNode

__all__ = ["DependencyArc", "WeightLike"]

WeightLike = Union[Duration, Callable[[int, Mapping[str, Any]], Duration], None]


class DependencyArc:
    """A weighted, possibly delayed dependency between two instant nodes."""

    __slots__ = ("source", "target", "delay", "_constant_ps", "_weight_fn", "label")

    def __init__(
        self,
        source: InstantNode,
        target: InstantNode,
        weight: WeightLike = None,
        delay: int = 0,
        label: str = "",
    ) -> None:
        if not isinstance(delay, int) or isinstance(delay, bool) or delay < 0:
            raise GraphError(f"arc delay must be a non-negative integer, got {delay!r}")
        if target.is_input:
            raise GraphError(
                f"input node {target.name!r} cannot be the target of arc from {source.name!r}: "
                "input instants are injected by the simulation, not computed"
            )
        self.source = source
        self.target = target
        self.delay = delay
        self.label = label
        self._constant_ps: Optional[int] = None
        self._weight_fn: Optional[Callable[[int, Mapping[str, Any]], Duration]] = None
        self._set_weight(weight)

    def _set_weight(self, weight: WeightLike) -> None:
        if weight is None:
            self._constant_ps = 0
            return
        if isinstance(weight, Duration):
            if weight.is_negative():
                raise GraphError(
                    f"arc {self.source.name!r} -> {self.target.name!r} has a negative weight"
                )
            self._constant_ps = weight.picoseconds
            return
        if callable(weight):
            self._weight_fn = weight
            return
        raise GraphError(
            f"arc weight must be a Duration or a callable(k, context) -> Duration, "
            f"got {type(weight).__name__}"
        )

    def set_weight(self, weight: WeightLike) -> None:
        """Replace the arc weight in place (both weight kinds are reset first).

        This is the incremental-specialisation hook: a candidate that only
        moved a function to a different resource swaps the affected duration
        weights instead of rebuilding the graph.  Never call it while an
        evaluator built on the graph is still in use -- evaluators pre-compile
        the weight plan at construction.
        """
        self._constant_ps = None
        self._weight_fn = None
        self._set_weight(weight)

    # -- evaluation ---------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        """True when the weight does not depend on the iteration or its data."""
        return self._constant_ps is not None

    @property
    def weight_callable(self) -> Optional[Callable[[int, Mapping[str, Any]], Duration]]:
        """The raw weight callable of a data-dependent arc (``None`` if constant).

        A weight callable may additionally expose a ``weight_ps(k, context) ->
        int`` method; evaluators can call it instead of :meth:`weight_ps` to
        skip the per-call :class:`Duration` validation (used by the compiled
        DSE path's pre-tabulated workload weights).
        """
        return self._weight_fn

    @property
    def constant_weight(self) -> Duration:
        """The constant weight; raises for data-dependent arcs."""
        if self._constant_ps is None:
            raise GraphError(
                f"arc {self.source.name!r} -> {self.target.name!r} has a data-dependent weight"
            )
        return Duration(self._constant_ps)

    def weight_ps(self, k: int, context: Mapping[str, Any]) -> int:
        """Evaluate the weight for iteration ``k`` as integer picoseconds."""
        if self._constant_ps is not None:
            return self._constant_ps
        duration = self._weight_fn(k, context)
        if not isinstance(duration, Duration):
            raise GraphError(
                f"weight callable of arc {self.source.name!r} -> {self.target.name!r} "
                f"returned {type(duration).__name__}; expected a Duration"
            )
        if duration.is_negative():
            raise GraphError(
                f"weight callable of arc {self.source.name!r} -> {self.target.name!r} "
                "returned a negative duration"
            )
        return duration.picoseconds

    def __repr__(self) -> str:
        weight = (
            str(Duration(self._constant_ps)) if self._constant_ps is not None else "<dynamic>"
        )
        suffix = f" (k-{self.delay})" if self.delay else ""
        return (
            f"DependencyArc({self.source.name!r} -> {self.target.name!r}, "
            f"weight={weight}{suffix})"
        )
