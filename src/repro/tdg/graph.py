"""The temporal dependency graph.

Section III-C of the paper: "These equations can be explicitly described
and can also be expressed on the basis of an oriented graph.  We call
such a graph a temporal dependency graph as it expresses dependencies
among evolution instants.  Each node corresponds to a specific evolution
instant and weights of arcs define intervals between instants.
Traversing this graph leads to successive computation of evolution
instants."

:class:`TemporalDependencyGraph` stores the nodes and arcs, validates
that the zero-delay dependency structure is acyclic (an instant cannot
depend on itself within one iteration), provides the topological
evaluation order used by the :class:`~repro.tdg.evaluator.TDGEvaluator`,
and can export the special case where all arc weights are constant to a
:class:`~repro.maxplus.linear_system.LinearMaxPlusSystem` (the "linear
expression" of equations (7)-(10)).
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..errors import GraphError
from ..maxplus.matrix import MaxPlusMatrix
from ..maxplus.linear_system import LinearMaxPlusSystem
from ..maxplus.scalar import MaxPlus
from .arc import DependencyArc, WeightLike
from .node import InstantNode, NodeKind

__all__ = ["TemporalDependencyGraph"]

NodeRef = Union[str, InstantNode]


class TemporalDependencyGraph:
    """Directed graph of evolution instants with weighted, possibly delayed arcs."""

    def __init__(self, name: str = "tdg") -> None:
        self.name = name
        self._nodes: Dict[str, InstantNode] = {}
        self._node_list: List[InstantNode] = []
        self._arcs: List[DependencyArc] = []
        self._arcs_into: Dict[str, List[DependencyArc]] = defaultdict(list)
        self._arcs_from: Dict[str, List[DependencyArc]] = defaultdict(list)
        self._topo_cache: Optional[List[InstantNode]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        name: str,
        kind: NodeKind = NodeKind.INTERNAL,
        tags: Optional[Mapping[str, Any]] = None,
    ) -> InstantNode:
        """Add a node; names must be unique within the graph."""
        if name in self._nodes:
            raise GraphError(f"node {name!r} already exists in graph {self.name!r}")
        node = InstantNode(name, kind, index=len(self._node_list), tags=tags)
        self._nodes[name] = node
        self._node_list.append(node)
        self._topo_cache = None
        return node

    def add_input(self, name: str, tags: Optional[Mapping[str, Any]] = None) -> InstantNode:
        """Add an INPUT node (value injected by the surrounding simulation)."""
        return self.add_node(name, NodeKind.INPUT, tags)

    def add_internal(self, name: str, tags: Optional[Mapping[str, Any]] = None) -> InstantNode:
        """Add an INTERNAL node (computed, never simulated)."""
        return self.add_node(name, NodeKind.INTERNAL, tags)

    def add_output(self, name: str, tags: Optional[Mapping[str, Any]] = None) -> InstantNode:
        """Add an OUTPUT node (computed and turned back into a simulation event)."""
        return self.add_node(name, NodeKind.OUTPUT, tags)

    def add_arc(
        self,
        source: NodeRef,
        target: NodeRef,
        weight: WeightLike = None,
        delay: int = 0,
        label: str = "",
    ) -> DependencyArc:
        """Add the dependency ``x_target(k) >= x_source(k - delay) ⊗ weight(k)``."""
        arc = DependencyArc(self.node(source), self.node(target), weight, delay, label)
        self._arcs.append(arc)
        self._arcs_into[arc.target.name].append(arc)
        self._arcs_from[arc.source.name].append(arc)
        self._topo_cache = None
        return arc

    def remove_arcs(self, arcs: Iterable[DependencyArc]) -> int:
        """Remove the given arcs from the graph; returns how many were removed.

        Arcs that do not belong to the graph raise
        :class:`~repro.errors.GraphError` (removing a foreign arc silently
        would hide an incremental-specialisation bookkeeping bug).  Used by
        the compiled DSE evaluator to re-propagate only the schedule arcs of
        resources whose service order actually changed between candidates.
        """
        doomed = set(map(id, arcs))
        if not doomed:
            return 0
        known = set(map(id, self._arcs))
        foreign = doomed - known
        if foreign:
            raise GraphError(
                f"cannot remove {len(foreign)} arc(s) that do not belong to "
                f"graph {self.name!r}"
            )
        touched_targets = {arc.target.name for arc in self._arcs if id(arc) in doomed}
        touched_sources = {arc.source.name for arc in self._arcs if id(arc) in doomed}
        self._arcs = [arc for arc in self._arcs if id(arc) not in doomed]
        for name in touched_targets:
            self._arcs_into[name] = [
                arc for arc in self._arcs_into[name] if id(arc) not in doomed
            ]
        for name in touched_sources:
            self._arcs_from[name] = [
                arc for arc in self._arcs_from[name] if id(arc) not in doomed
            ]
        self._topo_cache = None
        return len(doomed)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def node(self, ref: NodeRef) -> InstantNode:
        """Resolve a node by name (or pass an :class:`InstantNode` through)."""
        if isinstance(ref, InstantNode):
            if self._nodes.get(ref.name) is not ref:
                raise GraphError(f"node {ref.name!r} does not belong to graph {self.name!r}")
            return ref
        try:
            return self._nodes[ref]
        except KeyError:
            raise GraphError(f"unknown node {ref!r} in graph {self.name!r}") from None

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    @property
    def nodes(self) -> Tuple[InstantNode, ...]:
        return tuple(self._node_list)

    @property
    def arcs(self) -> Tuple[DependencyArc, ...]:
        return tuple(self._arcs)

    @property
    def input_nodes(self) -> Tuple[InstantNode, ...]:
        return tuple(node for node in self._node_list if node.is_input)

    @property
    def internal_nodes(self) -> Tuple[InstantNode, ...]:
        return tuple(node for node in self._node_list if node.is_internal)

    @property
    def output_nodes(self) -> Tuple[InstantNode, ...]:
        return tuple(node for node in self._node_list if node.is_output)

    def arcs_into(self, ref: NodeRef) -> Tuple[DependencyArc, ...]:
        return tuple(self._arcs_into[self.node(ref).name])

    def arcs_from(self, ref: NodeRef) -> Tuple[DependencyArc, ...]:
        return tuple(self._arcs_from[self.node(ref).name])

    @property
    def node_count(self) -> int:
        """Number of nodes -- the complexity measure reported in Table I and Fig. 5."""
        return len(self._node_list)

    @property
    def arc_count(self) -> int:
        return len(self._arcs)

    @property
    def max_delay(self) -> int:
        """Largest iteration lag appearing on any arc."""
        return max((arc.delay for arc in self._arcs), default=0)

    def is_constant_weighted(self) -> bool:
        """True when every arc weight is a constant duration (the linear case)."""
        return all(arc.is_constant for arc in self._arcs)

    # ------------------------------------------------------------------
    # validation and ordering
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural sanity; raises :class:`~repro.errors.GraphError` on problems."""
        for node in self._node_list:
            if not node.is_input and not self._arcs_into[node.name]:
                raise GraphError(
                    f"computed node {node.name!r} has no incoming arc; its instants "
                    "would stay at ε forever"
                )
        self.topological_order()

    def topological_order(self) -> List[InstantNode]:
        """Evaluation order over the zero-delay dependency structure.

        Input nodes come first, then computed nodes such that every
        zero-delay predecessor appears before its successor.  A cycle in the
        zero-delay structure raises :class:`~repro.errors.GraphError`.
        """
        if self._topo_cache is not None:
            return list(self._topo_cache)
        in_degree: Dict[str, int] = {node.name: 0 for node in self._node_list}
        for arc in self._arcs:
            if arc.delay == 0:
                in_degree[arc.target.name] += 1
        queue = deque(
            node for node in self._node_list if in_degree[node.name] == 0
        )
        order: List[InstantNode] = []
        while queue:
            node = queue.popleft()
            order.append(node)
            for arc in self._arcs_from[node.name]:
                if arc.delay != 0:
                    continue
                in_degree[arc.target.name] -= 1
                if in_degree[arc.target.name] == 0:
                    queue.append(arc.target)
        if len(order) != len(self._node_list):
            remaining = sorted(set(self._nodes) - {node.name for node in order})
            raise GraphError(
                f"zero-delay dependency cycle involving nodes {remaining}: an instant "
                "cannot depend on itself within the same iteration"
            )
        self._topo_cache = order
        return list(order)

    # ------------------------------------------------------------------
    # export to the linear (max, +) form
    # ------------------------------------------------------------------
    def to_linear_system(self) -> LinearMaxPlusSystem:
        """Export the graph as the linear recurrence of equations (9)-(10).

        Requires every arc weight to be constant.  The state vector ``X``
        stacks every computed (internal + output) node, the input vector
        ``U`` stacks the input nodes, and ``Y`` selects the output nodes
        from ``X`` through ``C(0)``.
        """
        if not self.is_constant_weighted():
            raise GraphError(
                "the graph has data-dependent arc weights; only constant-weight graphs "
                "admit the linear matrix form"
            )
        computed = [node for node in self._node_list if not node.is_input]
        inputs = list(self.input_nodes)
        outputs = list(self.output_nodes)
        if not computed or not inputs or not outputs:
            raise GraphError(
                "the linear form requires at least one input, one computed and one output node"
            )
        state_index = {node.name: i for i, node in enumerate(computed)}
        input_index = {node.name: i for i, node in enumerate(inputs)}

        a_matrices: Dict[int, MaxPlusMatrix] = {}
        b_matrices: Dict[int, MaxPlusMatrix] = {}
        for arc in self._arcs:
            weight = MaxPlus(arc.constant_weight.picoseconds)
            row = state_index[arc.target.name]
            if arc.source.is_input:
                matrix = b_matrices.get(arc.delay)
                if matrix is None:
                    matrix = MaxPlusMatrix.epsilon(len(computed), len(inputs))
                col = input_index[arc.source.name]
                current = matrix[row, col]
                b_matrices[arc.delay] = matrix.with_entry(row, col, current.oplus(weight))
            else:
                matrix = a_matrices.get(arc.delay)
                if matrix is None:
                    matrix = MaxPlusMatrix.epsilon(len(computed), len(computed))
                col = state_index[arc.source.name]
                current = matrix[row, col]
                a_matrices[arc.delay] = matrix.with_entry(row, col, current.oplus(weight))

        c_matrix = MaxPlusMatrix.epsilon(len(outputs), len(computed))
        for out_row, node in enumerate(outputs):
            c_matrix = c_matrix.with_entry(out_row, state_index[node.name], MaxPlus(0))

        return LinearMaxPlusSystem(
            state_size=len(computed),
            input_size=len(inputs),
            output_size=len(outputs),
            a_matrices=a_matrices,
            b_matrices=b_matrices,
            c_matrices={0: c_matrix},
            state_labels=[node.name for node in computed],
            input_labels=[node.name for node in inputs],
            output_labels=[node.name for node in outputs],
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable multi-line description (used by examples and docs)."""
        lines = [
            f"Temporal dependency graph {self.name!r}: "
            f"{self.node_count} nodes, {self.arc_count} arcs, max delay {self.max_delay}"
        ]
        for node in self._node_list:
            lines.append(f"  [{node.kind.value:8s}] {node.name}")
            for arc in self._arcs_into[node.name]:
                weight = (
                    str(arc.constant_weight) if arc.is_constant else f"<{arc.label or 'dynamic'}>"
                )
                delay = f"(k-{arc.delay})" if arc.delay else "(k)"
                lines.append(f"      <- {arc.source.name}{delay} ⊗ {weight}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"TemporalDependencyGraph({self.name!r}, nodes={self.node_count}, "
            f"arcs={self.arc_count})"
        )
