"""Loosely-timed (TLM-LT) baseline with temporal decoupling.

Section I of the paper discusses the loosely-timed coding style of
TLM-2.0 as the standard way to reduce simulation events: processes run
ahead of the simulation time in a local time offset and only
synchronise with the kernel when the offset exceeds a *global quantum*.
"However, too large a value can lead to degraded timing accuracy
because delays due to access conflicts to shared resources are not
simulated."

This module implements that baseline so its speed/accuracy trade-off
can be measured against the dynamic computation method (ablation
benchmark):

* execute steps accumulate their duration in a per-process local
  offset; the process yields to the kernel only when the offset reaches
  the quantum (fewer timed events),
* resource arbitration is *not* simulated while running ahead -- the
  documented source of inaccuracy of the coding style,
* a read synchronises the process only when its local offset already
  exceeds the quantum; otherwise the exchange happens at the (stale)
  kernel time, which is where timing error appears.

The recorded exchange instants can be compared with the accurate
explicit model through :func:`repro.observation.compare.compare_instants`.
"""

from __future__ import annotations

from typing import Dict, Generator, Mapping, Optional, Tuple

from ..archmodel.application import RelationKind
from ..archmodel.architecture import ArchitectureModel
from ..archmodel.function import AppFunction
from ..archmodel.platform import ProcessingResource
from ..archmodel.token import DataToken
from ..archmodel.workload import bind_workload
from ..channels.base import ChannelBase
from ..channels.fifo import FifoChannel
from ..channels.rendezvous import RendezvousChannel
from ..environment.sink import AlwaysReadySink, Sink
from ..environment.stimulus import Stimulus
from ..errors import ModelError, SimulationError
from ..kernel.scheduler import Simulator
from ..kernel.simtime import Duration, Time
from ..kernel.stats import KernelStats
from .processes import SinkDriver, StimulusDriver

__all__ = ["LooselyTimedArchitectureModel"]


def _loosely_timed_function_process(
    simulator: Simulator,
    function: AppFunction,
    channels: Dict[str, ChannelBase],
    quantum: Duration,
    resource: ProcessingResource,
) -> Generator:
    """Temporally decoupled interpretation of one function's behaviour."""
    workloads = {
        step_index: bind_workload(step.workload, resource)
        for step_index, step in enumerate(function.steps)
        if step.kind == "execute"
    }
    iteration = 0
    token: Optional[DataToken] = None
    local_offset = 0
    quantum_ps = quantum.picoseconds
    while True:
        for step_index, step in enumerate(function.steps):
            kind = step.kind
            if kind == "read":
                if local_offset >= quantum_ps and local_offset > 0:
                    yield Duration(local_offset)
                    local_offset = 0
                token = yield from channels[step.relation].read()
            elif kind == "write":
                yield from channels[step.relation].write(token)
            elif kind == "execute":
                local_offset += workloads[step_index].duration(iteration, token).picoseconds
                if local_offset >= quantum_ps and local_offset > 0:
                    yield Duration(local_offset)
                    local_offset = 0
            elif kind == "delay":
                local_offset += step.duration.picoseconds
                if local_offset >= quantum_ps and local_offset > 0:
                    yield Duration(local_offset)
                    local_offset = 0
            else:  # pragma: no cover - new primitives must be handled explicitly
                raise SimulationError(f"unsupported behaviour step kind {kind!r}")
        iteration += 1


class LooselyTimedArchitectureModel:
    """Quantum-based temporally decoupled model of an architecture (TLM-LT baseline)."""

    def __init__(
        self,
        architecture: ArchitectureModel,
        stimuli: Mapping[str, Stimulus],
        quantum: Duration,
        sinks: Optional[Mapping[str, Sink]] = None,
        name: Optional[str] = None,
    ) -> None:
        if not isinstance(quantum, Duration) or quantum.is_negative():
            raise ModelError("the global quantum must be a non-negative Duration")
        architecture.validate()
        self.architecture = architecture
        self.quantum = quantum
        self.name = name or f"{architecture.name}-lt"
        self.simulator = Simulator(self.name)

        relations = architecture.relations()
        external_inputs = {spec.name for spec in architecture.external_inputs()}
        external_outputs = {spec.name for spec in architecture.external_outputs()}
        missing = external_inputs - set(stimuli)
        if missing:
            raise ModelError(f"missing stimuli for external inputs: {sorted(missing)}")
        sinks = dict(sinks or {})
        for relation in external_outputs:
            sinks.setdefault(relation, AlwaysReadySink())

        self._channels: Dict[str, ChannelBase] = {}
        for spec in relations.values():
            if spec.kind is RelationKind.FIFO:
                channel: ChannelBase = FifoChannel(self.simulator, spec.name, spec.capacity)
            else:
                channel = RendezvousChannel(self.simulator, spec.name)
            self._channels[spec.name] = channel

        for function in architecture.application.functions:
            self.simulator.spawn(
                _loosely_timed_function_process,
                self.simulator,
                function,
                self._channels,
                quantum,
                architecture.resource_of(function.name),
                name=f"lt:{function.name}",
            )

        self._stimulus_drivers: Dict[str, StimulusDriver] = {}
        for relation, stimulus in stimuli.items():
            driver = StimulusDriver(self.simulator, self._channels[relation], stimulus)
            self._stimulus_drivers[relation] = driver
            self.simulator.spawn(driver.process, name=f"stimulus:{relation}")
        self._sink_drivers: Dict[str, SinkDriver] = {}
        for relation, sink in sinks.items():
            driver = SinkDriver(self.simulator, self._channels[relation], sink)
            self._sink_drivers[relation] = driver
            self.simulator.spawn(driver.process, name=f"sink:{relation}")

        self._final_stats: Optional[KernelStats] = None

    # ------------------------------------------------------------------
    def run(self, until=None) -> KernelStats:
        """Run the model and return the kernel statistics."""
        self._final_stats = self.simulator.run(until)
        return self._final_stats

    @property
    def kernel_stats(self) -> KernelStats:
        return self._final_stats if self._final_stats is not None else self.simulator.stats()

    def exchange_instants(self, relation: str) -> Tuple[Time, ...]:
        try:
            return self._channels[relation].exchange_instants
        except KeyError:
            raise ModelError(f"unknown relation {relation!r}") from None

    def output_instants(self, relation: str) -> Tuple[Time, ...]:
        return self.exchange_instants(relation)

    def relation_event_count(self) -> int:
        return sum(channel.exchange_count for channel in self._channels.values())

    def __repr__(self) -> str:
        return (
            f"LooselyTimedArchitectureModel({self.architecture.name!r}, quantum={self.quantum})"
        )
