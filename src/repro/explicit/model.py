"""The explicit (fully event-driven) performance model.

"The first model is obtained by exhibiting all relations among
application functions" (Section V): every relation is a simulated
channel, every function is a kernel process and every execution start,
execution end and data exchange is a simulation event.  This is the
reference model of all experiments -- the accuracy yardstick and the
denominator of every speed-up measurement.

:class:`ExplicitArchitectureModel` assembles the whole executable model
from an :class:`~repro.archmodel.architecture.ArchitectureModel`, a
stimulus per external input and a sink per external output, runs it and
exposes the observables the analyses need (exchange instants, activity
trace, relation event counts, kernel statistics).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..archmodel.application import RelationKind
from ..archmodel.architecture import ArchitectureModel
from ..channels.base import ChannelBase
from ..channels.fifo import FifoChannel
from ..channels.rendezvous import RendezvousChannel
from ..environment.sink import AlwaysReadySink, Sink
from ..environment.stimulus import Stimulus
from ..errors import ModelError
from ..kernel.scheduler import Simulator
from ..kernel.simtime import Time
from ..kernel.stats import KernelStats
from ..observation.activity import ActivityTrace
from .arbiter import StaticOrderArbiter
from .processes import SinkDriver, StimulusDriver, function_process

__all__ = ["ExplicitArchitectureModel"]


class ExplicitArchitectureModel:
    """Executable event-driven performance model of an architecture."""

    def __init__(
        self,
        architecture: ArchitectureModel,
        stimuli: Mapping[str, Stimulus],
        sinks: Optional[Mapping[str, Sink]] = None,
        record_activity: bool = True,
        name: Optional[str] = None,
    ) -> None:
        architecture.validate()
        self.architecture = architecture
        self.name = name or f"{architecture.name}-explicit"
        self.simulator = Simulator(self.name)
        self.activity_trace: Optional[ActivityTrace] = ActivityTrace() if record_activity else None

        relations = architecture.relations()
        external_inputs = {spec.name for spec in architecture.external_inputs()}
        external_outputs = {spec.name for spec in architecture.external_outputs()}

        missing = external_inputs - set(stimuli)
        if missing:
            raise ModelError(f"missing stimuli for external inputs: {sorted(missing)}")
        unknown = set(stimuli) - external_inputs
        if unknown:
            raise ModelError(f"stimuli provided for non-input relations: {sorted(unknown)}")
        sinks = dict(sinks or {})
        unknown_sinks = set(sinks) - external_outputs
        if unknown_sinks:
            raise ModelError(f"sinks provided for non-output relations: {sorted(unknown_sinks)}")
        for relation in external_outputs:
            sinks.setdefault(relation, AlwaysReadySink())

        # channels
        self._channels: Dict[str, ChannelBase] = {}
        for spec in relations.values():
            if spec.kind is RelationKind.FIFO:
                channel: ChannelBase = FifoChannel(self.simulator, spec.name, spec.capacity)
            else:
                channel = RendezvousChannel(self.simulator, spec.name)
            self._channels[spec.name] = channel

        # arbiters
        self._arbiters: Dict[str, StaticOrderArbiter] = {}
        schedules = architecture.resource_schedules()
        for resource in architecture.platform.resources:
            self._arbiters[resource.name] = StaticOrderArbiter(
                self.simulator, resource, schedules[resource.name]
            )

        # function processes
        for function in architecture.application.functions:
            resource = architecture.resource_of(function.name)
            self.simulator.spawn(
                function_process,
                self.simulator,
                function,
                self._channels,
                self._arbiters[resource.name],
                resource,
                self.activity_trace,
                name=f"func:{function.name}",
            )

        # environment
        self._stimulus_drivers: Dict[str, StimulusDriver] = {}
        for relation, stimulus in stimuli.items():
            driver = StimulusDriver(self.simulator, self._channels[relation], stimulus)
            self._stimulus_drivers[relation] = driver
            self.simulator.spawn(driver.process, name=f"stimulus:{relation}")
        self._sink_drivers: Dict[str, SinkDriver] = {}
        for relation, sink in sinks.items():
            driver = SinkDriver(self.simulator, self._channels[relation], sink)
            self._sink_drivers[relation] = driver
            self.simulator.spawn(driver.process, name=f"sink:{relation}")

        self._final_stats: Optional[KernelStats] = None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until=None) -> KernelStats:
        """Run the model (to completion by default) and return the kernel statistics."""
        self._final_stats = self.simulator.run(until)
        return self._final_stats

    @property
    def kernel_stats(self) -> KernelStats:
        """Kernel statistics of the last run (current counters if not run yet)."""
        return self._final_stats if self._final_stats is not None else self.simulator.stats()

    # ------------------------------------------------------------------
    # observables
    # ------------------------------------------------------------------
    def channel(self, relation: str) -> ChannelBase:
        try:
            return self._channels[relation]
        except KeyError:
            raise ModelError(f"unknown relation {relation!r}") from None

    @property
    def channels(self) -> Dict[str, ChannelBase]:
        return dict(self._channels)

    def exchange_instants(self, relation: str) -> Tuple[Time, ...]:
        """Exchange instants of one relation (the ``xM(k)`` sequence)."""
        return self.channel(relation).exchange_instants

    def output_instants(self, relation: str) -> Tuple[Time, ...]:
        """Output evolution instants ``y(k)`` of an external output relation."""
        return self.exchange_instants(relation)

    def offer_instants(self, relation: str) -> List[Time]:
        """The environment's ``u(k)`` instants on an external input relation."""
        try:
            return self._stimulus_drivers[relation].offer_instants
        except KeyError:
            raise ModelError(f"relation {relation!r} has no stimulus driver") from None

    def relation_event_count(self) -> int:
        """Total number of data exchanges over all relations.

        This is the quantity the paper uses to compute the *event ratio*
        between the explicit model and the equivalent model.
        """
        return sum(channel.exchange_count for channel in self._channels.values())

    def iteration_count(self, relation: Optional[str] = None) -> int:
        """Number of completed iterations, measured on an external output relation."""
        outputs = self.architecture.external_outputs()
        if relation is None:
            if not outputs:
                raise ModelError("the architecture has no external output relation")
            relation = outputs[0].name
        return self.channel(relation).exchange_count

    def __repr__(self) -> str:
        return f"ExplicitArchitectureModel({self.architecture.name!r})"
