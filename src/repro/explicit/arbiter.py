"""Static-order resource arbitration for the event-driven model.

The arbiter enforces the execute-step semantics of
:mod:`repro.archmodel` on the simulation kernel: executions mapped onto
a resource are *granted* strictly in the resource's static service
order, at most ``concurrency`` of them run at the same time, and a
running execution is never pre-empted.

Every execute step instance is identified by its *global slot index*
``n = k * S + p`` where ``k`` is the iteration, ``S`` the number of
slots per iteration and ``p`` the step's position in the static order.
``acquire`` blocks until

* every earlier slot has been granted (service order preservation), and
* slot ``n - concurrency`` has completed (a server is free).

Unlimited-concurrency resources (dedicated hardware) grant immediately.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Set, Tuple

from ..archmodel.mapping import ScheduleSlot
from ..archmodel.platform import ProcessingResource
from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.scheduler import Simulator

__all__ = ["StaticOrderArbiter"]


class StaticOrderArbiter:
    """Grants execute slots of one resource in its static service order."""

    def __init__(
        self,
        simulator: "Simulator",
        resource: ProcessingResource,
        schedule: List[ScheduleSlot],
    ) -> None:
        self.simulator = simulator
        self.resource = resource
        self._positions: Dict[Tuple[str, int], int] = {
            (slot.function, slot.step_index): slot.position for slot in schedule
        }
        self._slots_per_iteration = len(schedule)
        self._iteration_counters: Dict[Tuple[str, int], int] = {
            key: 0 for key in self._positions
        }
        self._next_grant = 0
        self._completed: Set[int] = set()
        self._state_changed = simulator.create_event(f"{resource.name}.arbiter")

    # ------------------------------------------------------------------
    @property
    def slots_per_iteration(self) -> int:
        return self._slots_per_iteration

    def slot_index(self, function: str, step_index: int, iteration: int) -> int:
        """Global slot index of an execute step instance."""
        position = self._require_position(function, step_index)
        return iteration * self._slots_per_iteration + position

    def _require_position(self, function: str, step_index: int) -> int:
        try:
            return self._positions[(function, step_index)]
        except KeyError:
            raise SimulationError(
                f"step {step_index} of {function!r} is not scheduled on "
                f"resource {self.resource.name!r}"
            ) from None

    # ------------------------------------------------------------------
    def acquire(self, function: str, step_index: int) -> Generator:
        """Block until the step's next slot is granted; returns the global slot index.

        Must be driven with ``yield from`` inside a simulation process.
        """
        key = (function, step_index)
        position = self._require_position(function, step_index)
        iteration = self._iteration_counters[key]
        self._iteration_counters[key] = iteration + 1
        n = iteration * self._slots_per_iteration + position

        if self.resource.is_unlimited:
            return n

        concurrency = self.resource.concurrency
        while True:
            if n == self._next_grant:
                server_slot = n - concurrency
                if server_slot < 0 or server_slot in self._completed:
                    break
            yield self._state_changed
        self._next_grant = n + 1
        self._state_changed.notify_immediate()
        return n

    def release(self, slot: int) -> None:
        """Mark the execution granted as ``slot`` as finished."""
        if self.resource.is_unlimited:
            return
        self._completed.add(slot)
        self._prune()
        self._state_changed.notify_immediate()

    def _prune(self) -> None:
        concurrency = self.resource.concurrency or 0
        if len(self._completed) <= 4 * max(concurrency, 1):
            return
        threshold = self._next_grant - concurrency
        self._completed = {slot for slot in self._completed if slot >= threshold}

    def __repr__(self) -> str:
        return (
            f"StaticOrderArbiter({self.resource.name!r}, slots={self._slots_per_iteration}, "
            f"granted={self._next_grant})"
        )
