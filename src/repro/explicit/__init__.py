"""Event-driven execution of architecture models (the baseline).

* :class:`~repro.explicit.model.ExplicitArchitectureModel` -- the fully
  event-driven reference model ("exhibiting all relations among
  application functions").
* :class:`~repro.explicit.quantum.LooselyTimedArchitectureModel` -- the
  TLM-LT temporal-decoupling baseline used in ablation benchmarks.
* :class:`~repro.explicit.arbiter.StaticOrderArbiter` -- static-order,
  non-preemptive resource arbitration.
"""

from .arbiter import StaticOrderArbiter
from .model import ExplicitArchitectureModel
from .processes import SinkDriver, StimulusDriver, function_process
from .quantum import LooselyTimedArchitectureModel

__all__ = [
    "ExplicitArchitectureModel",
    "LooselyTimedArchitectureModel",
    "StaticOrderArbiter",
    "StimulusDriver",
    "SinkDriver",
    "function_process",
]
