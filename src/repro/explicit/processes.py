"""Kernel processes of the explicit (fully event-driven) model.

One process per application function, one per environment stimulus and
one per environment sink.  These processes realise, event by event, the
timing semantics documented in :mod:`repro.archmodel`; every relation
exchange and every execution start/end goes through the simulation
kernel -- this is the reference model the dynamic computation method is
compared against, both for accuracy and for speed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Optional

from ..archmodel.function import AppFunction
from ..archmodel.platform import ProcessingResource
from ..archmodel.token import DataToken
from ..archmodel.workload import bind_workload
from ..channels.base import ChannelBase
from ..environment.sink import Sink
from ..environment.stimulus import Stimulus
from ..errors import SimulationError
from ..kernel.simtime import Time
from ..observation.activity import ActivityTrace
from .arbiter import StaticOrderArbiter

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.scheduler import Simulator

__all__ = ["function_process", "StimulusDriver", "SinkDriver"]


def function_process(
    simulator: "Simulator",
    function: AppFunction,
    channels: Dict[str, ChannelBase],
    arbiter: StaticOrderArbiter,
    resource: ProcessingResource,
    trace: Optional[ActivityTrace] = None,
) -> Generator:
    """Cyclic interpretation of one application function's behaviour."""
    # Resource-dependent workloads (heterogeneous platforms) are bound to the
    # serving resource once, before the first iteration.
    workloads = {
        step_index: bind_workload(step.workload, resource)
        for step_index, step in enumerate(function.steps)
        if step.kind == "execute"
    }
    iteration = 0
    token: Optional[DataToken] = None
    while True:
        for step_index, step in enumerate(function.steps):
            kind = step.kind
            if kind == "read":
                token = yield from channels[step.relation].read()
            elif kind == "write":
                yield from channels[step.relation].write(token)
            elif kind == "execute":
                slot = yield from arbiter.acquire(function.name, step_index)
                workload = workloads[step_index]
                duration = workload.duration(iteration, token)
                start = simulator.now
                if trace is not None:
                    trace.record(
                        resource=resource.name,
                        function=function.name,
                        label=step.label,
                        iteration=iteration,
                        start=start,
                        end=start + duration,
                        operations=workload.operations(iteration, token),
                    )
                if duration:
                    yield duration
                arbiter.release(slot)
            elif kind == "delay":
                if step.duration:
                    yield step.duration
            else:  # pragma: no cover - new primitives must be handled explicitly
                raise SimulationError(f"unsupported behaviour step kind {kind!r}")
        iteration += 1


class StimulusDriver:
    """Environment process offering the items of a stimulus over one relation."""

    def __init__(self, simulator: "Simulator", channel: ChannelBase, stimulus: Stimulus) -> None:
        self.simulator = simulator
        self.channel = channel
        self.stimulus = stimulus
        self._offer_instants: List[Time] = []

    @property
    def offer_instants(self) -> List[Time]:
        """The ``u(k)`` instants: when the environment reached each write."""
        return list(self._offer_instants)

    def process(self) -> Generator:
        """The kernel process body (spawn with ``Simulator.spawn``)."""
        for index in range(len(self.stimulus)):
            scheduled = self.stimulus.offer_time(index)
            now = self.simulator.now
            if scheduled > now:
                yield scheduled - now
            self._offer_instants.append(self.simulator.now)
            yield from self.channel.write(self.stimulus.token(index))


class SinkDriver:
    """Environment process draining one external output relation."""

    def __init__(self, simulator: "Simulator", channel: ChannelBase, sink: Sink) -> None:
        self.simulator = simulator
        self.channel = channel
        self.sink = sink
        self._accepted_instants: List[Time] = []
        self._tokens: List[object] = []

    @property
    def accepted_instants(self) -> List[Time]:
        """Instants at which the environment actually received each output item."""
        return list(self._accepted_instants)

    @property
    def tokens(self) -> List[object]:
        return list(self._tokens)

    def process(self) -> Generator:
        """The kernel process body (spawn with ``Simulator.spawn``)."""
        index = 0
        while True:
            delay = self.sink.delay_before_read(index)
            if delay:
                yield delay
            token = yield from self.channel.read()
            self._accepted_instants.append(self.simulator.now)
            self._tokens.append(token)
            index += 1
