"""Command-line interface.

A small front-end over the experiment harnesses so the paper's artefacts
can be regenerated without writing any Python::

    python -m repro.cli table1 --items 4000 --stages 4 --jobs 4
    python -m repro.cli fig5   --items 500 --seed 7
    python -m repro.cli fig6   --frames 1
    python -m repro.cli lte    --symbols 2800
    python -m repro.cli describe didactic|lte|chain2
    python -m repro.cli campaign list
    python -m repro.cli campaign run table1-sweep --jobs 4 --store results.jsonl
    python -m repro.cli dse run --problem didactic --budget 200 --store dse.jsonl
    python -m repro.cli dse run --strategy nsga2 --store dse.jsonl \
        --checkpoint dse.ck.jsonl --rounds 3        # interrupt at a round boundary
    python -m repro.cli dse run --strategy nsga2 --store dse.jsonl \
        --checkpoint dse.ck.jsonl --resume          # continue bit-identically
    python -m repro.cli dse front --store dse.jsonl # front from the store alone
    python -m repro.cli dse show didactic
    python -m repro.cli obs runs                    # the cross-run ledger
    python -m repro.cli obs trend candidates_per_s  # one metric over time
    python -m repro.cli obs diff -2 -1              # two runs, side by side
    python -m repro.cli obs regressions             # sentinel verdicts (CI gate)

Every sub-command prints plain-text tables/series (via
:mod:`repro.analysis.report`), suitable for redirecting into the
experiment log.  ``table1`` and ``fig5`` route through the campaign
runner (:mod:`repro.campaign`), so they accept ``--jobs`` for parallel
execution and ``--store`` for content-addressed result caching; the
``campaign`` sub-command exposes the full subsystem (grid overrides,
Monte-Carlo replications, aggregation).
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from . import telemetry
from .analysis import format_rows, format_series
from .campaign import (
    CampaignRunner,
    ResultStore,
    aggregate_results,
    campaign_manifest,
    default_registry,
)
from .dse import (
    DEFAULT_OBJECTIVES,
    EVALUATOR_MODES,
    MappingExplorer,
    ParetoFront,
    STRATEGY_NAMES,
    front_from_store,
    get_problem,
    problem_registry,
    ranked_rows,
)
from .errors import CampaignError, ModelError
from .examples_lib import build_didactic_architecture
from .generator import build_chain_architecture
from .lte import (
    OUTPUT_RELATION,
    build_lte_architecture,
    build_lte_models,
    fig6_observation,
)
from .observation import compare_instants

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of Le Nours et al., DATE 2014.",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="show informational 'repro' log messages on stderr (repeat for debug)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table1 = subparsers.add_parser("table1", help="Table I: speed-up on chained architectures")
    table1.add_argument("--items", type=int, default=4000, help="data items per model")
    table1.add_argument("--stages", type=int, default=4, help="largest chain length")
    _add_runner_arguments(table1)

    fig5 = subparsers.add_parser("fig5", help="Fig. 5: speed-up vs TDG node count")
    fig5.add_argument("--items", type=int, default=500, help="data items per sweep point")
    fig5.add_argument("--x-size", type=int, default=10, help="size of the X(k) vector")
    fig5.add_argument(
        "--nodes",
        type=int,
        nargs="+",
        default=[50, 100, 200, 500, 1000],
        help="target node counts",
    )
    fig5.add_argument("--seed", type=int, default=7, help="stimulus seed (data sizes)")
    _add_runner_arguments(fig5)

    fig6 = subparsers.add_parser("fig6", help="Fig. 6: LTE frame observation")
    fig6.add_argument("--frames", type=int, default=1, help="number of LTE frames to observe")

    lte = subparsers.add_parser("lte", help="Section V: LTE speed-up measurement")
    lte.add_argument("--symbols", type=int, default=2800, help="number of OFDM symbols")

    describe = subparsers.add_parser("describe", help="print an architecture description")
    describe.add_argument(
        "target",
        choices=["didactic", "lte", "chain2"],
        help="which architecture to describe",
    )

    campaign = subparsers.add_parser("campaign", help="parallel experiment campaigns")
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    run = campaign_sub.add_parser("run", help="run a registered scenario campaign")
    run.add_argument("scenario", help="scenario name (see 'campaign list')")
    run.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="pin a scenario parameter (repeatable; drops the like-named grid axis)",
    )
    run.add_argument(
        "--grid",
        dest="grid",
        action="append",
        default=[],
        metavar="KEY=V1,V2,...",
        help="replace/add a grid axis (repeatable)",
    )
    run.add_argument("--replications", type=int, default=None, help="Monte-Carlo replications")
    run.add_argument("--seed", type=int, default=None, help="override the base seed")
    run.add_argument(
        "--record-instants",
        action="store_true",
        help="persist the full output-instant sequences in the store",
    )
    run.add_argument("--per-job", action="store_true", help="also print one row per job")
    run.add_argument(
        "--dry-run",
        action="store_true",
        help="print the expanded job list (digests, seeds, cache status) without simulating",
    )
    run.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="PATH",
        help="enable telemetry and write a Chrome trace-event JSON of the run "
        "(load in Perfetto or chrome://tracing)",
    )
    _add_runner_arguments(run)
    _add_ledger_arguments(run)

    campaign_sub.add_parser("list", help="list the registered scenarios")

    show = campaign_sub.add_parser("show", help="show one scenario's parameters and jobs")
    show.add_argument("scenario", help="scenario name (see 'campaign list')")

    dse = subparsers.add_parser("dse", help="mapping design-space exploration")
    dse_sub = dse.add_subparsers(dest="dse_command", required=True)

    dse_run = dse_sub.add_parser("run", help="explore candidate mappings of a design problem")
    dse_run.add_argument("--problem", default="didactic", help="design problem (see 'dse show')")
    dse_run.add_argument(
        "--strategy",
        default="random",
        choices=list(STRATEGY_NAMES),
        help="search strategy",
    )
    dse_run.add_argument("--budget", type=int, default=200, help="max candidates to score")
    dse_run.add_argument("--seed", type=int, default=0, help="search seed (not the stimulus seed)")
    dse_run.add_argument(
        "--evaluator",
        default="replay",
        choices=list(EVALUATOR_MODES),
        help="candidate scoring path: 'replay' computes every iteration, "
        "'steady' certifies the periodic regime and extrapolates the rest "
        "(identical objectives, per-candidate fallback to replay when the "
        "problem does not qualify), 'auto' is steady-whenever-possible",
    )
    dse_run.add_argument(
        "--backend",
        default=None,
        choices=["auto", "python", "numpy"],
        help="array backend for the batched replay sweep: 'python' is the "
        "zero-dependency reference, 'numpy' vectorises across the candidates "
        "of a generation (bit-identical results), 'auto' picks numpy when "
        "importable; default: auto-detect per worker",
    )
    dse_run.add_argument("--items", type=int, default=None, help="data items per evaluation")
    dse_run.add_argument(
        "--max-resources", type=int, default=None, help="resource-count constraint"
    )
    dse_run.add_argument(
        "--no-orders",
        action="store_true",
        help="fix every static service order to the dependency-aware default",
    )
    dse_run.add_argument(
        "--loose-orders",
        action="store_true",
        help="sample service orders without the dependency-feasibility constraint "
        "(deliberately probes infeasible interleavings)",
    )
    dse_run.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="pin a problem parameter (repeatable), e.g. stages=3 or seed=42",
    )
    dse_run.add_argument("--top", type=int, default=None, help="also print the top-N ranked table")
    dse_run.add_argument(
        "--checkpoint",
        type=str,
        default=None,
        metavar="PATH",
        help="write a resumable JSONL checkpoint (strategy state, candidate "
        "sequence, front) after every round",
    )
    dse_run.add_argument(
        "--resume",
        action="store_true",
        help="resume the exploration from --checkpoint (needs the --store that "
        "backed the original run); with the same --budget the combined run is "
        "bit-identical to an uninterrupted one, a larger --budget extends it",
    )
    dse_run.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="stop after this many search rounds (a clean round-boundary "
        "interruption point for --checkpoint/--resume)",
    )
    dse_run.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="PATH",
        help="enable telemetry and write a Chrome trace-event JSON of the "
        "exploration (load in Perfetto or chrome://tracing); also writes a "
        "per-round convergence JSONL next to it unless --convergence overrides",
    )
    dse_run.add_argument(
        "--convergence",
        type=str,
        default=None,
        metavar="PATH",
        help="write a per-round convergence JSONL (hypervolume, front size, "
        "feasible ratio, candidates/s) -- render it with 'repro obs report'",
    )
    dse_run.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the live per-round progress line on stderr",
    )
    dse_run.add_argument(
        "--progress",
        action="store_true",
        help="force the live per-round progress line even when stderr is not "
        "a TTY (it is auto-suppressed in redirected/CI logs)",
    )
    _add_runner_arguments(dse_run)
    _add_ledger_arguments(dse_run)

    dse_front = dse_sub.add_parser(
        "front", help="rebuild a Pareto front from a result store alone"
    )
    dse_front.add_argument(
        "--store",
        type=str,
        required=True,
        metavar="PATH",
        help="JSONL result store holding dse-eval records",
    )
    dse_front.add_argument(
        "--problem",
        default=None,
        help="only this problem's evaluations (required when the store mixes "
        "several problems)",
    )
    dse_front.add_argument(
        "--top", type=int, default=None, help="also print the top-N ranked table"
    )

    dse_show = dse_sub.add_parser("show", help="describe design problems and their spaces")
    dse_show.add_argument(
        "problem", nargs="?", default=None, help="problem name (omit to list all problems)"
    )
    dse_show.add_argument(
        "--max-resources", type=int, default=None, help="resource-count constraint"
    )
    dse_show.add_argument("--no-orders", action="store_true", help="ignore service orders")
    dse_show.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="pin a problem parameter (repeatable)",
    )
    dse_show.add_argument(
        "--store",
        type=str,
        default=None,
        metavar="PATH",
        help="also summarise this result store's dse-eval records per problem, "
        "split by the evaluator mode (replay/steady) that produced them",
    )

    obs = subparsers.add_parser("obs", help="observability: telemetry artefact reports")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_sub.add_parser(
        "report",
        help="render a convergence JSONL or Chrome trace file written by --trace",
    )
    obs_report.add_argument(
        "path",
        help="a convergence .jsonl (per-round records) or a Chrome trace .json",
    )
    obs_report.add_argument(
        "--last", type=int, default=None, help="only show the last N rounds"
    )

    obs_runs = obs_sub.add_parser("runs", help="list the run ledger, one row per manifest")
    _add_obs_ledger_argument(obs_runs)
    obs_runs.add_argument(
        "--kind", default=None, help="only runs of this kind (dse/campaign/benchmark)"
    )
    obs_runs.add_argument(
        "--label", default=None, help="only runs with this label (problem/scenario name)"
    )
    obs_runs.add_argument("--last", type=int, default=None, help="only the last N runs")

    obs_trend = obs_sub.add_parser(
        "trend", help="text trend of one metric across comparable runs"
    )
    obs_trend.add_argument(
        "metric", help="metric name, e.g. candidates_per_s, wall_time_s, hypervolume"
    )
    _add_obs_ledger_argument(obs_trend)
    obs_trend.add_argument(
        "--kind", default=None, help="only runs of this kind (dse/campaign/benchmark)"
    )
    obs_trend.add_argument(
        "--label", default=None, help="only runs with this label (problem/scenario name)"
    )
    obs_trend.add_argument(
        "--last", type=int, default=None, help="only the last N runs of each group"
    )

    obs_diff = obs_sub.add_parser(
        "diff", help="compare two ledger runs: manifest fields, metrics, counters, span totals"
    )
    obs_diff.add_argument(
        "run_a", help="run id prefix, or a ledger index like -2 (second newest)"
    )
    obs_diff.add_argument(
        "run_b", help="run id prefix, or a ledger index like -1 (newest)"
    )
    _add_obs_ledger_argument(obs_diff)

    obs_gc = obs_sub.add_parser(
        "gc",
        help="compact the run ledger: keep the last N runs of every "
        "problem+config family, drop the long tail",
    )
    _add_obs_ledger_argument(obs_gc)
    obs_gc.add_argument(
        "--keep",
        type=int,
        default=16,
        metavar="N",
        help="runs to keep per comparison group (default: 16)",
    )
    obs_gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what compaction would drop without rewriting the ledger",
    )

    obs_regressions = obs_sub.add_parser(
        "regressions",
        help="judge the newest run of every comparable family against its history "
        "(exits non-zero on any regression, for CI gating)",
    )
    _add_obs_ledger_argument(obs_regressions)
    obs_regressions.add_argument(
        "--window",
        type=int,
        default=telemetry.DEFAULT_WINDOW,
        help="baseline window: at most this many of the newest comparable runs",
    )
    obs_regressions.add_argument(
        "--min-runs",
        type=int,
        default=telemetry.DEFAULT_MIN_RUNS,
        help="minimum comparable baseline runs before a verdict is rendered",
    )
    obs_regressions.add_argument(
        "--sensitivity",
        type=float,
        default=telemetry.DEFAULT_SENSITIVITY,
        help="threshold widths away from the baseline median that count as a change",
    )
    return parser


def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1, help="parallel worker processes")
    parser.add_argument(
        "--store",
        type=str,
        default=None,
        metavar="PATH",
        help="JSONL result store (cache hits skip simulation)",
    )


def _add_ledger_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ledger",
        type=str,
        default=None,
        metavar="PATH",
        help="append this run's manifest to this ledger JSONL "
        "(default: $REPRO_LEDGER or .repro/ledger.jsonl)",
    )
    parser.add_argument(
        "--no-ledger",
        action="store_true",
        help="do not record this run in the run ledger",
    )


def _add_obs_ledger_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ledger",
        type=str,
        default=None,
        metavar="PATH",
        help="run ledger JSONL to read (default: $REPRO_LEDGER or .repro/ledger.jsonl)",
    )


def _make_runner(jobs: int, store_path: Optional[str]) -> CampaignRunner:
    store = ResultStore(store_path) if store_path else None
    return CampaignRunner(store=store, jobs=jobs)


def _configure_logging(verbose: int) -> None:
    """Wire the ``repro`` package logger to stderr; ``-v`` raises the level."""
    logger = logging.getLogger("repro")
    if not any(isinstance(handler, logging.StreamHandler) for handler in logger.handlers):
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("# %(name)s: %(message)s"))
        logger.addHandler(handler)
    if verbose >= 2:
        logger.setLevel(logging.DEBUG)
    elif verbose == 1:
        logger.setLevel(logging.INFO)
    else:
        logger.setLevel(logging.WARNING)


def _export_trace(trace_path: str) -> None:
    """Write the active registry's Chrome trace and print its text summary."""
    snapshot = telemetry.snapshot()
    written = telemetry.write_chrome_trace(trace_path, snapshot)
    print(telemetry.render_summary(snapshot))
    print(f"# chrome trace written to {written} (load in Perfetto or chrome://tracing)")


def _dse_progress(record: Mapping[str, Any]) -> None:
    """The live per-round stderr progress line (suppressed by --quiet)."""
    hypervolume = record.get("hypervolume")
    hv_text = f"{hypervolume:.4g}" if hypervolume is not None else "n/a"
    cps = record.get("candidates_per_second")
    cps_text = f"{cps:.1f} cand/s" if cps is not None else "no fresh candidates"
    print(
        f"# round {record.get('round')}: spent {record.get('spent')}, "
        f"front {record.get('front_size')}, hypervolume {hv_text}, {cps_text}",
        file=sys.stderr,
        flush=True,
    )


def _want_progress(arguments: argparse.Namespace) -> bool:
    """Whether ``dse run`` shows the live per-round line on stderr.

    ``--quiet`` always wins; otherwise the line only goes to a real
    terminal -- a redirected/captured stderr (CI logs, pipes) stays clean
    unless ``--progress`` forces it back on.
    """
    if arguments.quiet:
        return False
    if arguments.progress:
        return True
    return bool(getattr(sys.stderr, "isatty", lambda: False)())


def _parse_value(text: str) -> Any:
    """Parse an override value: JSON when possible, bare string otherwise."""
    try:
        return json.loads(text)
    except ValueError:
        return text


def _parse_overrides(entries: Sequence[str]) -> Dict[str, Any]:
    overrides: Dict[str, Any] = {}
    for entry in entries:
        key, separator, value = entry.partition("=")
        if not separator or not key:
            raise CampaignError(f"expected KEY=VALUE, got {entry!r}")
        overrides[key] = _parse_value(value)
    return overrides


def _parse_grid(entries: Sequence[str]) -> Dict[str, List[Any]]:
    grid: Dict[str, List[Any]] = {}
    for entry in entries:
        key, separator, values = entry.partition("=")
        if not separator or not key:
            raise CampaignError(f"expected KEY=V1,V2,..., got {entry!r}")
        grid[key] = [_parse_value(value) for value in values.split(",") if value != ""]
    return grid


def _run_table1(items: int, stages: int, jobs: int = 1, store_path: Optional[str] = None) -> int:
    runner = _make_runner(jobs, store_path)
    report = runner.run_scenario(
        "table1-sweep",
        overrides={"items": items},
        grid={"stages": list(range(1, stages + 1))},
    )
    for result in report.errors:
        print(f"# {result.label or result.scenario} failed: {result.error}", file=sys.stderr)
    rows = [result.as_row() for result in report.results if result.ok]
    print(format_rows(rows))
    if store_path:
        print(report.summary("table1"))
    return 0 if report.ok else 1


def _run_fig5(
    items: int,
    x_size: int,
    node_counts: Sequence[int],
    seed: int = 7,
    jobs: int = 1,
    store_path: Optional[str] = None,
) -> int:
    runner = _make_runner(jobs, store_path)
    report = runner.run_scenario(
        "fig5-sweep",
        overrides={"items": items, "x_size": x_size, "seed": seed},
        grid={"nodes": list(node_counts)},
    )
    points = []
    for result in report.results:
        nodes = result.parameters.get("nodes")
        if not result.ok:
            print(f"# skipping {nodes} nodes: {result.error}", file=sys.stderr)
            continue
        if not result.outputs_identical:
            print(f"# accuracy lost at {nodes} nodes", file=sys.stderr)
            return 1
        points.append((nodes, round(result.speedup, 2)))
    print(format_series(f"X size: {x_size}", points, "TDG nodes", "speed-up"))
    if store_path:
        print(report.summary("fig5"))
    return 0


def _run_fig6(frames: int) -> int:
    observation = fig6_observation(frame_count=frames)
    print(f"# {observation.symbol_count} symbols, {observation.tdg_nodes}-node graph")
    rows = [
        {
            "k": k,
            "u(k) [us]": round(observation.input_instants[k].microseconds, 2),
            "y(k) [us]": round(observation.output_instants[k].microseconds, 2)
            if observation.output_instants[k] is not None
            else "-",
        }
        for k in range(observation.symbol_count)
    ]
    print(format_rows(rows))
    print(format_series("DSP GOPS", observation.dsp_profile.as_rows(), "t [us]", "GOPS"))
    print(format_series("DECODER GOPS", observation.decoder_profile.as_rows(), "t [us]", "GOPS"))
    return 0


def _run_lte(symbols: int) -> int:
    explicit, equivalent = build_lte_models(symbols)
    start = time.perf_counter()
    explicit.run()
    explicit_wall = time.perf_counter() - start
    start = time.perf_counter()
    equivalent.run()
    equivalent_wall = time.perf_counter() - start
    comparison = compare_instants(
        explicit.output_instants(OUTPUT_RELATION), equivalent.output_instants(OUTPUT_RELATION)
    )
    rows = [
        {
            "model": "explicit",
            "relation events": explicit.relation_event_count(),
            "wall-clock (s)": round(explicit_wall, 3),
        },
        {
            "model": "equivalent",
            "relation events": equivalent.relation_event_count(),
            "wall-clock (s)": round(equivalent_wall, 3),
        },
    ]
    print(format_rows(rows))
    ratio = explicit.relation_event_count() / max(equivalent.relation_event_count(), 1)
    print(f"event ratio {ratio:.2f}, speed-up {explicit_wall / max(equivalent_wall, 1e-9):.2f}, "
          f"outputs {comparison.summary()}")
    return 0 if comparison.identical else 1


def _run_describe(target: str) -> int:
    if target == "didactic":
        print(build_didactic_architecture().describe())
    elif target == "lte":
        print(build_lte_architecture().describe())
    else:
        print(build_chain_architecture(2).describe())
    return 0


def _run_campaign_dry_run(runner: CampaignRunner, arguments: argparse.Namespace,
                          overrides, grid) -> int:
    scenario = runner.registry.get(arguments.scenario)
    specs = scenario.specs(
        overrides=overrides,
        grid=grid,
        replications=arguments.replications,
        record_instants=arguments.record_instants,
    )
    planned = runner.plan(specs)
    rows = [
        {
            "job": index,
            "digest": job.digest()[:12],
            "replication": job.replication,
            "seed": job.seed,
            "cached": "yes" if cached is not None else "no",
            "parameters": json.dumps(dict(job.spec.parameters), sort_keys=True),
        }
        for index, (job, cached) in enumerate(planned)
    ]
    print(format_rows(rows))
    hits = sum(1 for _, cached in planned if cached is not None)
    print(
        f"dry-run {arguments.scenario}: {len(planned)} jobs, {hits} cached, "
        f"{len(planned) - hits} to simulate"
    )
    return 0


def _run_campaign_run(arguments: argparse.Namespace) -> int:
    overrides = _parse_overrides(arguments.overrides)
    if arguments.seed is not None:
        overrides["seed"] = arguments.seed
    grid = _parse_grid(arguments.grid)
    runner = _make_runner(arguments.jobs, arguments.store)
    if arguments.dry_run:
        return _run_campaign_dry_run(runner, arguments, overrides, grid)
    if arguments.trace is not None:
        telemetry.enable()
    ledger = None if arguments.no_ledger else telemetry.RunLedger(arguments.ledger)

    def _run():
        return runner.run_scenario(
            arguments.scenario,
            overrides=overrides,
            grid=grid,
            replications=arguments.replications,
            record_instants=arguments.record_instants,
        )

    folded: Optional[Dict[str, Any]] = None
    with telemetry.timed_ns() as wall_timer:
        if ledger is not None and not telemetry.enabled():
            # Capture the run's telemetry for the manifest without enabling
            # it globally: the scope swaps in a private registry and, with
            # the parent disabled, folds nothing back on exit.
            with telemetry.collect(enable=True) as scope:
                report = _run()
            folded = scope.snapshot()
        else:
            report = _run()
            if ledger is not None:
                folded = telemetry.snapshot()
    for result in report.errors:
        print(f"# {result.label or result.scenario} failed: {result.error}", file=sys.stderr)
    if arguments.per_job:
        print(format_rows([result.as_row() for result in report.results if result.ok]))
    print(format_rows(aggregate_results(report.results)))
    print(report.summary(f"campaign {arguments.scenario}"))
    if ledger is not None:
        manifest = ledger.append(
            campaign_manifest(
                arguments.scenario,
                report,
                parameters={
                    "overrides": overrides,
                    "grid": grid,
                    "replications": arguments.replications,
                },
                config={"jobs": arguments.jobs},
                wall_time_s=wall_timer.elapsed_ns / 1e9,
                telemetry_snapshot=folded,
            )
        )
        print(
            f"# run manifest {manifest.run_id[:12]} appended to {ledger.path} "
            f"(see 'repro obs runs')"
        )
    if arguments.trace is not None:
        _export_trace(arguments.trace)
    return 0 if report.ok else 1


def _run_campaign_list() -> int:
    rows = [
        {
            "scenario": scenario.name,
            "jobs": scenario.job_count(),
            "replications": scenario.replications,
            "description": scenario.description,
        }
        for scenario in default_registry().scenarios()
    ]
    print(format_rows(rows))
    return 0


def _run_campaign_show(name: str) -> int:
    scenario = default_registry().get(name)
    print(f"scenario: {scenario.name}")
    print(f"description: {scenario.description}")
    print(f"replications: {scenario.replications}")
    print("defaults:")
    for key in sorted(scenario.defaults):
        print(f"  {key} = {scenario.defaults[key]!r}")
    if scenario.grid:
        print("grid:")
        for key in sorted(scenario.grid):
            print(f"  {key} in {list(scenario.grid[key])!r}")
    rows = [
        {
            "job": index,
            "digest": job.digest()[:12],
            "replication": job.replication,
            "seed": job.seed,
            "parameters": json.dumps(dict(job.spec.parameters), sort_keys=True),
        }
        for index, job in enumerate(
            job for spec in scenario.specs() for job in spec.jobs()
        )
    ]
    print(format_rows(rows))
    return 0


def _run_dse_run(arguments: argparse.Namespace) -> int:
    parameters = _parse_overrides(arguments.overrides)
    if arguments.items is not None:
        parameters["items"] = arguments.items
    convergence = arguments.convergence
    if convergence is None and arguments.trace is not None:
        # One --trace flag yields both artefacts: the Chrome trace and the
        # per-round convergence curve next to it.
        convergence = str(Path(arguments.trace).with_suffix(".conv.jsonl"))
    if arguments.trace is not None:
        telemetry.enable()
    explorer = MappingExplorer(
        problem=arguments.problem,
        strategy=arguments.strategy,
        budget=arguments.budget,
        seed=arguments.seed,
        parameters=parameters,
        max_resources=arguments.max_resources,
        explore_orders=not arguments.no_orders,
        strict=not arguments.loose_orders,
        jobs=arguments.jobs,
        store=ResultStore(arguments.store) if arguments.store else None,
        checkpoint=arguments.checkpoint,
        resume=arguments.resume,
        max_rounds=arguments.rounds,
        convergence=convergence,
        progress=_dse_progress if _want_progress(arguments) else None,
        ledger=None if arguments.no_ledger else telemetry.RunLedger(arguments.ledger),
        evaluator=arguments.evaluator,
        backend=arguments.backend,
    )
    problem = explorer.problem
    space = explorer.build_space()
    print(
        f"# problem {problem.name!r}: {len(space.functions)} functions, "
        f"bank of {space.platform.composition()} "
        f"(max {space.max_resources} of {len(space.resources)} usable), "
        f"strategy {arguments.strategy!r}, budget {arguments.budget}, "
        f"evaluator {arguments.evaluator!r}, "
        f"backend {arguments.backend or 'auto'!r}"
    )
    report = explorer.run()
    if report.resumed:
        print(f"# resumed from checkpoint {arguments.checkpoint}")
    print(f"Pareto front ({' vs '.join(o.label for o in report.objectives)}):")
    print(format_rows(report.front_rows()))
    if arguments.top is not None:
        print(f"top {arguments.top} candidates:")
        print(format_rows(report.ranked(top=arguments.top)))
    best = report.best()
    if best is not None:
        print(
            f"best latency: {best.metrics['latency_us']:.2f} us with "
            f"{best.metrics['resources_used']} resource(s) -- {best.metrics['allocation']}"
        )
    print(report.summary())
    if convergence is not None:
        print(f"# convergence trace written to {convergence} (see 'repro obs report')")
    if report.manifest is not None and explorer.ledger is not None:
        print(
            f"# run manifest {report.manifest.run_id[:12]} appended to "
            f"{explorer.ledger.path} (see 'repro obs runs')"
        )
    if arguments.trace is not None:
        _export_trace(arguments.trace)
    return 0 if report.errors == 0 and len(report.front) > 0 else 1


def _context_bank_compositions(contexts: Sequence[str]) -> Dict[str, List[str]]:
    """Bank composition -> contexts (canonical parameter JSON) instantiating it.

    Contexts whose problem is not registered (or whose parameters no longer
    build a platform) are skipped: their bank cannot be reconstructed.
    """
    compositions: Dict[str, List[str]] = {}
    for context in sorted(contexts):
        parameters = json.loads(context)
        try:
            problem = get_problem(str(parameters.get("problem")))
            platform = problem.platform_factory(problem.parameters(parameters))
        except (ModelError, CampaignError, TypeError, ValueError, KeyError):
            continue
        compositions.setdefault(platform.composition(), []).append(context)
    return compositions


def _problem_objectives(name: Optional[str]):
    """The registered problem's objective tuple, or None when unknown."""
    if name is None:
        return None
    try:
        return tuple(get_problem(name).objectives)
    except ModelError:
        return None


def _annotate_evaluators(
    rows: List[Dict[str, object]], mode_of: Mapping[str, str]
) -> List[Dict[str, object]]:
    """Append the per-record evaluator mode column to front/ranked rows."""
    for row in rows:
        row["evaluator"] = mode_of.get(str(row.get("candidate", "")), "replay")
    return rows


def _run_dse_front(arguments: argparse.Namespace) -> int:
    store = ResultStore(arguments.store)
    # With --problem the objective tuple is known up front, so the store scan
    # builds the right front directly; without it the problem name only falls
    # out of the scan, and the front is rebuilt from the in-memory entries.
    objectives = _problem_objectives(arguments.problem)
    front, entries, problems, contexts, evaluators = front_from_store(
        store,
        problem=arguments.problem,
        objectives=objectives if objectives is not None else DEFAULT_OBJECTIVES,
    )
    if arguments.problem is None and len(problems) > 1:
        print(
            f"error: store {arguments.store} mixes problems "
            f"({', '.join(sorted(problems))}); pass --problem to pick one",
            file=sys.stderr,
        )
        return 2
    compositions = _context_bank_compositions(contexts)
    if len(compositions) > 1:
        # Two records only trade off against each other on one bank: merging
        # e.g. a 2-DSP front with a 1-DSP front silently mixes cost axes.
        print(
            f"error: store {arguments.store} mixes evaluations against "
            f"{len(compositions)} different resource banks "
            f"({'; '.join(sorted(compositions))}); a Pareto front is only "
            "meaningful for one bank composition",
            file=sys.stderr,
        )
        return 2
    if len(contexts) > 1:
        # Latencies are only comparable within one workload: a front across
        # e.g. items=6 and items=12 records would silently mask the larger run.
        print(
            f"error: store {arguments.store} mixes {len(contexts)} different "
            "parameterisations of the problem (e.g. items/seed differ); a "
            "Pareto front is only meaningful within one -- rebuild from a "
            "store holding a single exploration's records",
            file=sys.stderr,
        )
        return 2
    label = arguments.problem or (next(iter(problems)) if problems else "(none)")
    if objectives is None:
        objectives = _problem_objectives(label)
    if objectives is not None and objectives != front.objectives:
        # Rebuild on the problem's own axes (e.g. the lte problem adds a
        # per-kind utilisation objective); the entries are already in hand.
        rebuilt = ParetoFront(objectives)
        for digest, metrics in entries:
            rebuilt.offer(digest, metrics)
        front = rebuilt
    modes = sorted(set(evaluators.values()))
    backends = _store_backend_counts(store, label)
    print(
        f"# store {arguments.store}: {len(entries)} dse-eval record(s) for "
        f"problem {label!r}"
        + (f", bank of {next(iter(compositions))}" if compositions else "")
        + (f", evaluator mode(s): {'+'.join(modes)}" if modes else "")
        + (f", backend(s): {'+'.join(sorted(backends))}" if backends else "")
    )
    if len(modes) > 1 or len(backends) > 1:
        # Sound (modes and backends are certified to produce identical
        # objectives) but worth knowing: wall-time provenance differs
        # between the records.
        mixed = []
        if len(modes) > 1:
            mixed.append(f"evaluator modes ({', '.join(modes)})")
        if len(backends) > 1:
            mixed.append(f"array backends ({', '.join(sorted(backends))})")
        print(
            f"# warning: store {arguments.store} mixes {' and '.join(mixed)}; "
            "objectives are certified identical across modes and backends, "
            "but per-record wall times are not comparable",
            file=sys.stderr,
        )
    # Per-record provenance: rows identify candidates by digest prefix.
    mode_of = {digest[:12]: mode for digest, mode in evaluators.items()}
    print(f"Pareto front ({' vs '.join(o.label for o in front.objectives)}):")
    print(format_rows(_annotate_evaluators(front.rows(), mode_of)))
    if arguments.top is not None:
        print(f"top {arguments.top} candidates:")
        print(
            format_rows(
                _annotate_evaluators(
                    ranked_rows(entries, front.objectives, top=arguments.top), mode_of
                )
            )
        )
    print(
        f"front size {len(front)}, hypervolume {front.hypervolume_text()} "
        f"(rebuilt from the store alone)"
    )
    return 0 if len(front) > 0 else 1


def _store_backend_counts(store: ResultStore, problem: str) -> Dict[str, int]:
    """Per array backend, how many dse-eval records of ``problem`` it swept.

    A separate scan (rather than widening :func:`front_from_store`'s
    return shape) so existing unpack sites stay valid; records written
    before the ``backend`` field existed count as ``"python"``, the only
    path that existed then.
    """
    from .campaign import JobResult
    from .dse import DSE_SCENARIO

    counts: Dict[str, int] = {}
    for job_digest in store.digests():
        record = store.get(job_digest)
        try:
            result = JobResult.from_record(record)
        except CampaignError:
            continue
        if result.scenario != DSE_SCENARIO or not result.ok:
            continue
        if str(result.parameters.get("problem")) != problem:
            continue
        backend = result.backend or "python"
        counts[backend] = counts.get(backend, 0) + 1
    return counts


def _store_evaluator_counts(store: ResultStore) -> Dict[str, Dict[str, int]]:
    """Per problem, how many stored dse-eval records each evaluator produced."""
    from .campaign import JobResult
    from .dse import DSE_SCENARIO

    counts: Dict[str, Dict[str, int]] = {}
    for job_digest in store.digests():
        record = store.get(job_digest)
        try:
            result = JobResult.from_record(record)
        except CampaignError:
            continue
        if result.scenario != DSE_SCENARIO or not result.ok:
            continue
        problem = str(result.parameters.get("problem"))
        mode = result.evaluator or "replay"
        per_problem = counts.setdefault(problem, {})
        per_problem[mode] = per_problem.get(mode, 0) + 1
    return counts


def _evaluator_summary(per_mode: Mapping[str, int]) -> str:
    return ", ".join(f"{mode} {count}" for mode, count in sorted(per_mode.items()))


def _run_dse_show(arguments: argparse.Namespace) -> int:
    counts: Optional[Dict[str, Dict[str, int]]] = None
    if arguments.store is not None:
        counts = _store_evaluator_counts(ResultStore(arguments.store))
    if arguments.problem is None:
        rows = [
            {
                "problem": problem.name,
                "description": problem.description,
                "defaults": json.dumps(dict(problem.defaults), sort_keys=True),
            }
            for _, problem in sorted(problem_registry().items())
        ]
        if counts is not None:
            for row in rows:
                per_mode = counts.get(str(row["problem"]))
                row["stored records"] = _evaluator_summary(per_mode) if per_mode else "-"
        print(format_rows(rows))
        return 0
    problem = get_problem(arguments.problem)
    parameters = _parse_overrides(arguments.overrides)
    space = problem.space(
        parameters,
        max_resources=arguments.max_resources,
        explore_orders=not arguments.no_orders,
    )
    resolved = problem.parameters(parameters)
    print(f"problem: {problem.name}")
    print(f"description: {problem.description}")
    print("parameters:")
    for key in sorted(resolved):
        print(f"  {key} = {resolved[key]!r}")
    print(f"functions: {', '.join(space.functions)}")
    print(
        "resource bank: "
        + ", ".join(
            f"{resource.name} [{resource.kind.value}]" for resource in space.resources
        )
        + f" (max {space.max_resources} usable)"
    )
    print(f"bank composition: {space.platform.composition()}")
    if space.has_eligibility:
        print("eligibility:")
        for function in space.functions:
            print(f"  {function}: {', '.join(space.eligible_resources(function))}")
    print(
        "objectives: " + ", ".join(f"{o.label} ({o.key})" for o in problem.objectives)
    )
    cap = 100_000
    size = space.size(cap=cap)
    print(f"space size: {'>= ' if size >= cap else ''}{size} candidates "
          f"({'orders explored' if space.explore_orders else 'default orders only'})")
    default = space.default_candidate()
    print(f"default candidate: {default.describe()} ({default.digest()[:12]})")
    if counts is not None:
        per_mode = counts.get(problem.name)
        print(
            f"stored records in {arguments.store}: "
            + (_evaluator_summary(per_mode) if per_mode else "(none)")
        )
    return 0


def _report_chrome_trace(path: Path, payload: Mapping[str, Any]) -> int:
    """Aggregate a Chrome trace file: per-span-name counts and durations."""
    events = [
        event
        for event in payload.get("traceEvents") or []
        if isinstance(event, Mapping) and event.get("ph") == "X"
    ]
    if not events:
        print(f"# chrome trace {path}: no span events")
        return 1
    pids = {event.get("pid") for event in events}
    by_name: Dict[str, List[float]] = {}
    for event in events:
        by_name.setdefault(str(event.get("name", "?")), []).append(
            float(event.get("dur", 0.0))
        )
    rows = [
        {
            "span": name,
            "count": len(durations),
            "total (ms)": round(sum(durations) / 1e3, 3),
            "mean (us)": round(sum(durations) / len(durations), 1),
            "max (us)": round(max(durations), 1),
        }
        for name, durations in sorted(by_name.items())
    ]
    print(
        f"# chrome trace {path}: {len(events)} span event(s) across "
        f"{len(pids)} process(es) -- load in Perfetto for the timeline"
    )
    print(format_rows(rows))
    dropped = (payload.get("otherData") or {}).get("dropped_spans", 0)
    if dropped:
        print(f"# {dropped} span event(s) were dropped at the recording cap")
    return 0


def _run_obs_report(arguments: argparse.Namespace) -> int:
    path = Path(arguments.path)
    if not path.exists():
        print(f"error: {path} does not exist", file=sys.stderr)
        return 2
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (ValueError, OSError):
        payload = None
    if isinstance(payload, dict) and "traceEvents" in payload:
        return _report_chrome_trace(path, payload)
    trace = telemetry.ConvergenceTrace(path)
    records = trace.load()
    if not records:
        print(f"# {path}: no convergence records")
        return 1
    print(f"# convergence trace {path}: {len(records)} round(s)")
    print(telemetry.render_convergence(records, last=arguments.last))
    last = records[-1]
    hypervolume = last.get("hypervolume")
    hv_text = f"{hypervolume:.6g}" if hypervolume is not None else "n/a"
    print(
        f"final: {last.get('explored')} candidates explored, front size "
        f"{last.get('front_size')}, hypervolume {hv_text}"
    )
    return 0


_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"
_SPARK_ASCII = "_.-~=+*#"


def _sparkline(values: Sequence[Optional[float]]) -> str:
    """A one-character-per-run trend strip (ASCII fallback off UTF-8)."""
    blocks = _SPARK_BLOCKS
    try:
        blocks.encode(sys.stdout.encoding or "utf-8")
    except (LookupError, UnicodeEncodeError):
        blocks = _SPARK_ASCII
    present = [value for value in values if value is not None]
    if not present:
        return ""
    low, high = min(present), max(present)
    span = high - low
    cells = []
    for value in values:
        if value is None:
            cells.append(" ")
        elif span <= 0:
            cells.append(blocks[len(blocks) // 2])
        else:
            level = int((value - low) / span * (len(blocks) - 1) + 0.5)
            cells.append(blocks[min(len(blocks) - 1, level)])
    return "".join(cells)


def _metric_cell(manifest: "telemetry.RunManifest", name: str) -> object:
    value = manifest.metric(name)
    return round(value, 4) if value is not None else "-"


def _run_obs_runs(arguments: argparse.Namespace) -> int:
    ledger = telemetry.RunLedger(arguments.ledger)
    manifests = ledger.runs(kind=arguments.kind, label=arguments.label, last=arguments.last)
    if not manifests:
        print(f"# run ledger {ledger.path}: no runs recorded", file=sys.stderr)
        return 1
    rows = [
        {
            "run": manifest.run_id[:10],
            "created (UTC)": manifest.created_utc,
            "kind": manifest.kind,
            "label": manifest.label,
            "key": manifest.comparison_key[:12],
            "wall (s)": _metric_cell(manifest, "wall_time_s"),
            "cand/s": _metric_cell(manifest, "candidates_per_s"),
            "jobs/s": _metric_cell(manifest, "jobs_per_s"),
            "front": _metric_cell(manifest, "front_size"),
            "hypervolume": _metric_cell(manifest, "hypervolume"),
        }
        for manifest in manifests
    ]
    print(f"# run ledger {ledger.path}: {len(manifests)} run(s)")
    print(format_rows(rows))
    return 0


#: Sparkline cell marking the run where the current regression streak began.
_REGRESSION_MARK = "!"


def _metric_statuses(
    group: Sequence["telemetry.RunManifest"], metric: str, direction: str
) -> List[str]:
    """Sentinel status of ``metric`` for every run of one comparable group.

    Each run is judged against its own history prefix (the same windowed
    median/MAD rule ``obs regressions`` applies to the newest run), so the
    list shows where along the trend a regression *started*, not only
    whether the newest run is bad.
    """
    statuses = []
    for index, manifest in enumerate(group):
        verdict = telemetry.classify_run(
            manifest, group[: index + 1], metrics={metric: direction}
        )
        statuses.append(
            verdict.verdicts[0].status
            if verdict.verdicts
            else telemetry.STATUS_NO_BASELINE
        )
    return statuses


def _regression_onset(statuses: Sequence[str]) -> Optional[int]:
    """Index where the trailing regression streak begins, or None."""
    if not statuses or statuses[-1] != telemetry.STATUS_REGRESSED:
        return None
    onset = len(statuses) - 1
    while onset > 0 and statuses[onset - 1] == telemetry.STATUS_REGRESSED:
        onset -= 1
    return onset


def _run_obs_trend(arguments: argparse.Namespace) -> int:
    ledger = telemetry.RunLedger(arguments.ledger)
    manifests = ledger.runs(kind=arguments.kind, label=arguments.label)
    if not manifests:
        print(f"# run ledger {ledger.path}: no runs recorded", file=sys.stderr)
        return 1
    metric = arguments.metric
    direction = telemetry.METRIC_DIRECTIONS.get(metric)
    marked = False
    rows = []
    for key, group in telemetry.group_by_key(manifests).items():
        if arguments.last is not None and arguments.last > 0:
            group = group[-arguments.last :]
        values = [manifest.metric(metric) for manifest in group]
        present = [value for value in values if value is not None]
        if not present:
            continue
        first, last = present[0], present[-1]
        newest = group[-1]
        trend = _sparkline(values)
        status = "-"
        since = "-"
        if direction is not None:
            # Sentinel annotation: judge every run against its history prefix
            # and mark the run where the current regression streak started.
            statuses = _metric_statuses(group, metric, direction)
            status = statuses[-1]
            onset = _regression_onset(statuses)
            if onset is not None:
                since = group[onset].run_id[:10]
                trend = trend[:onset] + _REGRESSION_MARK + trend[onset + 1 :]
                marked = True
        rows.append(
            {
                "kind/label": f"{newest.kind}/{newest.label}",
                "key": key[:12],
                "runs": len(present),
                "first": round(first, 4),
                "last": round(last, 4),
                "min": round(min(present), 4),
                "max": round(max(present), 4),
                "delta": f"{(last - first) / abs(first):+.1%}" if first else "-",
                "trend": trend,
                "status": status,
                "since": since,
            }
        )
    if not rows:
        recorded = sorted({name for manifest in manifests for name in manifest.metrics})
        print(
            f"error: metric {metric!r} is not recorded in {ledger.path}; "
            f"recorded metrics: {', '.join(recorded) or '(none)'}",
            file=sys.stderr,
        )
        return 1
    print(f"# {metric} across {ledger.path} (one row per comparable run family)")
    print(format_rows(rows))
    if marked:
        print(
            f"# '{_REGRESSION_MARK}' marks the run where the current regression "
            "streak started ('since' holds its run id)"
        )
    return 0


def _resolve_run(
    manifests: Sequence["telemetry.RunManifest"], token: str
) -> "telemetry.RunManifest":
    """A ledger run by id prefix, or by index (``-1`` = newest append)."""
    try:
        index = int(token)
    except ValueError:
        matches = [manifest for manifest in manifests if manifest.run_id.startswith(token)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise CampaignError(f"no ledger run with id prefix {token!r}")
        raise CampaignError(
            f"run id prefix {token!r} is ambiguous ({len(matches)} ledger matches)"
        )
    try:
        return manifests[index]
    except IndexError:
        raise CampaignError(
            f"run index {index} is out of range (the ledger holds {len(manifests)} run(s))"
        ) from None


def _diff_cell(before: object, after: object) -> str:
    """Relative delta between two numeric cells, '-' when not comparable."""
    numbers = []
    for value in (before, after):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return "-"
        numbers.append(float(value))
    if not numbers[0]:
        return "-"
    return f"{(numbers[1] - numbers[0]) / abs(numbers[0]):+.1%}"


def _run_obs_diff(arguments: argparse.Namespace) -> int:
    ledger = telemetry.RunLedger(arguments.ledger)
    manifests = ledger.load()
    if not manifests:
        print(f"# run ledger {ledger.path}: no runs recorded", file=sys.stderr)
        return 1
    before = _resolve_run(manifests, arguments.run_a)
    after = _resolve_run(manifests, arguments.run_b)
    print(
        f"# diff {before.run_id[:12]} ({before.created_utc}) -> "
        f"{after.run_id[:12]} ({after.created_utc}) in {ledger.path}"
    )
    if before.comparison_key != after.comparison_key:
        print(
            "# warning: the runs have different comparison keys (problem or "
            "configuration differs) -- the deltas below mix workloads"
        )
    fields = [
        ("kind/label", f"{before.kind}/{before.label}", f"{after.kind}/{after.label}"),
        ("comparison key", before.comparison_key, after.comparison_key),
        ("package version", before.package_version, after.package_version),
        ("python", before.platform.get("python", "-"), after.platform.get("python", "-")),
        ("budget", before.budget, after.budget),
        (
            "evaluator",
            before.config.get("evaluator", "-"),
            after.config.get("evaluator", "-"),
        ),
        (
            # Manifests written before the array engine existed have no
            # backend key; "-" (rather than a guess) keeps the diff honest.
            "backend",
            before.config.get("backend", "-"),
            after.config.get("backend", "-"),
        ),
    ]
    print(format_rows([{"field": name, "a": a, "b": b} for name, a, b in fields]))
    metric_names = sorted(set(before.metrics) | set(after.metrics))
    if metric_names:
        print("metrics:")
        print(
            format_rows(
                [
                    {
                        "metric": name,
                        "a": before.metrics.get(name, "-"),
                        "b": after.metrics.get(name, "-"),
                        "delta": _diff_cell(before.metrics.get(name), after.metrics.get(name)),
                    }
                    for name in metric_names
                ]
            )
        )
    counters_a = before.telemetry.get("counters") or {}
    counters_b = after.telemetry.get("counters") or {}
    counter_names = sorted(set(counters_a) | set(counters_b))
    if counter_names:
        print("telemetry counters:")
        print(
            format_rows(
                [
                    {
                        "counter": name,
                        "a": counters_a.get(name, "-"),
                        "b": counters_b.get(name, "-"),
                        "delta": _diff_cell(counters_a.get(name), counters_b.get(name)),
                    }
                    for name in counter_names
                ]
            )
        )
    histograms_a = before.telemetry.get("histograms") or {}
    histograms_b = after.telemetry.get("histograms") or {}
    span_names = sorted(set(histograms_a) | set(histograms_b))
    if span_names:
        rows = []
        for name in span_names:
            total_a = (histograms_a.get(name) or {}).get("total_ns")
            total_b = (histograms_b.get(name) or {}).get("total_ns")
            rows.append(
                {
                    "span/histogram": name,
                    "a (ms)": round(total_a / 1e6, 3) if total_a is not None else "-",
                    "b (ms)": round(total_b / 1e6, 3) if total_b is not None else "-",
                    "delta": _diff_cell(total_a, total_b),
                }
            )
        print("span totals (from the folded histograms -- no Chrome trace needed):")
        print(format_rows(rows))
    return 0


def _run_obs_gc(arguments: argparse.Namespace) -> int:
    ledger = telemetry.RunLedger(arguments.ledger)
    if not ledger.exists():
        print(f"# run ledger {ledger.path}: no runs recorded", file=sys.stderr)
        return 1
    report = ledger.compact(arguments.keep, dry_run=arguments.dry_run)
    verb = "would keep" if report.dry_run else "kept"
    print(
        f"# compact {report.path}: keep last {report.keep_last} per run family -- "
        f"{verb} {report.kept} of {report.total} manifest(s), "
        f"dropped {report.dropped}"
    )
    if report.groups:
        rows = [
            {
                "kind/label": f"{group['kind']}/{group['label']}",
                "key": str(group["key"])[:12],
                "runs": group["runs"],
                "kept": group["kept"],
                "dropped": group["dropped"],
            }
            for group in report.groups
        ]
        print(format_rows(rows))
    if report.corrupt_dropped or report.incompatible_dropped:
        print(
            f"# unreadable lines also dropped: {report.corrupt_dropped} corrupt, "
            f"{report.incompatible_dropped} incompatible schema"
        )
    if report.dry_run:
        print("# dry run: the ledger was not modified")
    return 0


def _run_obs_regressions(arguments: argparse.Namespace) -> int:
    ledger = telemetry.RunLedger(arguments.ledger)
    manifests = ledger.load()
    if not manifests:
        print(f"# run ledger {ledger.path}: no runs recorded", file=sys.stderr)
        return 1
    verdicts = telemetry.latest_verdicts(
        manifests,
        window=arguments.window,
        min_runs=arguments.min_runs,
        sensitivity=arguments.sensitivity,
    )
    rows = []
    regressed = []
    for _, verdict in verdicts:
        rows.extend(verdict.rows())
        if verdict.regressed:
            regressed.append(verdict)
    print(
        f"# regression sentinel over {ledger.path}: {len(manifests)} run(s), "
        f"{len(verdicts)} run family(ies) judged"
    )
    if rows:
        print(format_rows(rows))
    else:
        print("# no judgeable metrics recorded yet")
    if regressed:
        families = ", ".join(
            f"{verdict.manifest.kind}/{verdict.manifest.label}" for verdict in regressed
        )
        print(f"REGRESSED: {len(regressed)} run family(ies): {families}", file=sys.stderr)
        return 1
    print("ok: no regressions against the comparable history")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (``python -m repro.cli`` / the ``repro`` console script)."""
    arguments = build_parser().parse_args(argv)
    _configure_logging(arguments.verbose)
    try:
        if arguments.command == "table1":
            return _run_table1(arguments.items, arguments.stages, arguments.jobs, arguments.store)
        if arguments.command == "fig5":
            return _run_fig5(
                arguments.items,
                arguments.x_size,
                arguments.nodes,
                arguments.seed,
                arguments.jobs,
                arguments.store,
            )
        if arguments.command == "fig6":
            return _run_fig6(arguments.frames)
        if arguments.command == "lte":
            return _run_lte(arguments.symbols)
        if arguments.command == "describe":
            return _run_describe(arguments.target)
        if arguments.command == "campaign":
            if arguments.campaign_command == "run":
                return _run_campaign_run(arguments)
            if arguments.campaign_command == "list":
                return _run_campaign_list()
            if arguments.campaign_command == "show":
                return _run_campaign_show(arguments.scenario)
        if arguments.command == "dse":
            if arguments.dse_command == "run":
                return _run_dse_run(arguments)
            if arguments.dse_command == "front":
                return _run_dse_front(arguments)
            if arguments.dse_command == "show":
                return _run_dse_show(arguments)
        if arguments.command == "obs":
            if arguments.obs_command == "report":
                return _run_obs_report(arguments)
            if arguments.obs_command == "runs":
                return _run_obs_runs(arguments)
            if arguments.obs_command == "trend":
                return _run_obs_trend(arguments)
            if arguments.obs_command == "diff":
                return _run_obs_diff(arguments)
            if arguments.obs_command == "gc":
                return _run_obs_gc(arguments)
            if arguments.obs_command == "regressions":
                return _run_obs_regressions(arguments)
    except (CampaignError, ModelError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {arguments.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
