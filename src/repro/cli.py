"""Command-line interface.

A small front-end over the experiment harnesses so the paper's artefacts
can be regenerated without writing any Python::

    python -m repro.cli table1 --items 4000 --stages 4
    python -m repro.cli fig5   --items 500
    python -m repro.cli fig6   --frames 1
    python -m repro.cli lte    --symbols 2800
    python -m repro.cli describe didactic|lte|chain2

Every sub-command prints plain-text tables/series (via
:mod:`repro.analysis.report`), suitable for redirecting into the
experiment log.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from .analysis import format_rows, format_series, measure_speedup, theoretical_event_ratio
from .environment import RandomSizeStimulus
from .examples_lib import build_didactic_architecture, didactic_stimulus
from .generator import build_chain_architecture, build_pipeline_architecture
from .kernel.simtime import microseconds
from .lte import (
    OUTPUT_RELATION,
    SYMBOLS_PER_FRAME,
    build_lte_architecture,
    build_lte_models,
    fig6_observation,
)
from .observation import compare_instants

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of Le Nours et al., DATE 2014.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table1 = subparsers.add_parser("table1", help="Table I: speed-up on chained architectures")
    table1.add_argument("--items", type=int, default=4000, help="data items per model")
    table1.add_argument("--stages", type=int, default=4, help="largest chain length")

    fig5 = subparsers.add_parser("fig5", help="Fig. 5: speed-up vs TDG node count")
    fig5.add_argument("--items", type=int, default=500, help="data items per sweep point")
    fig5.add_argument("--x-size", type=int, default=10, help="size of the X(k) vector")
    fig5.add_argument(
        "--nodes",
        type=int,
        nargs="+",
        default=[50, 100, 200, 500, 1000],
        help="target node counts",
    )

    fig6 = subparsers.add_parser("fig6", help="Fig. 6: LTE frame observation")
    fig6.add_argument("--frames", type=int, default=1, help="number of LTE frames to observe")

    lte = subparsers.add_parser("lte", help="Section V: LTE speed-up measurement")
    lte.add_argument("--symbols", type=int, default=2800, help="number of OFDM symbols")

    describe = subparsers.add_parser("describe", help="print an architecture description")
    describe.add_argument(
        "target",
        choices=["didactic", "lte", "chain2"],
        help="which architecture to describe",
    )
    return parser


def _run_table1(items: int, stages: int) -> int:
    rows = []
    for stage_count in range(1, stages + 1):
        measurement = measure_speedup(
            lambda s=stage_count: build_chain_architecture(s),
            lambda: {"L1": didactic_stimulus(items)},
            label=f"Example {stage_count}",
        )
        row = measurement.as_row()
        row["theoretical ratio"] = round(
            theoretical_event_ratio(build_chain_architecture(stage_count)), 2
        )
        rows.append(row)
    print(format_rows(rows))
    return 0 if all(row["accuracy"] == "identical" for row in rows) else 1


def _run_fig5(items: int, x_size: int, node_counts: Sequence[int]) -> int:
    length = max(x_size - 1, 1)
    points = []
    for nodes in node_counts:
        try:
            measurement = measure_speedup(
                lambda: build_pipeline_architecture(length),
                lambda: {"L0": RandomSizeStimulus(microseconds(10 * length), items, seed=7)},
                pad_to_nodes=nodes,
                label=f"nodes={nodes}",
            )
        except Exception as error:
            print(f"# skipping {nodes} nodes: {error}", file=sys.stderr)
            continue
        if not measurement.outputs_identical:
            print(f"# accuracy lost at {nodes} nodes", file=sys.stderr)
            return 1
        points.append((nodes, round(measurement.speedup, 2)))
    print(format_series(f"X size: {x_size}", points, "TDG nodes", "speed-up"))
    return 0


def _run_fig6(frames: int) -> int:
    observation = fig6_observation(frame_count=frames)
    print(f"# {observation.symbol_count} symbols, {observation.tdg_nodes}-node graph")
    rows = [
        {
            "k": k,
            "u(k) [us]": round(observation.input_instants[k].microseconds, 2),
            "y(k) [us]": round(observation.output_instants[k].microseconds, 2)
            if observation.output_instants[k] is not None
            else "-",
        }
        for k in range(observation.symbol_count)
    ]
    print(format_rows(rows))
    print(format_series("DSP GOPS", observation.dsp_profile.as_rows(), "t [us]", "GOPS"))
    print(format_series("DECODER GOPS", observation.decoder_profile.as_rows(), "t [us]", "GOPS"))
    return 0


def _run_lte(symbols: int) -> int:
    explicit, equivalent = build_lte_models(symbols)
    start = time.perf_counter()
    explicit.run()
    explicit_wall = time.perf_counter() - start
    start = time.perf_counter()
    equivalent.run()
    equivalent_wall = time.perf_counter() - start
    comparison = compare_instants(
        explicit.output_instants(OUTPUT_RELATION), equivalent.output_instants(OUTPUT_RELATION)
    )
    rows = [
        {
            "model": "explicit",
            "relation events": explicit.relation_event_count(),
            "wall-clock (s)": round(explicit_wall, 3),
        },
        {
            "model": "equivalent",
            "relation events": equivalent.relation_event_count(),
            "wall-clock (s)": round(equivalent_wall, 3),
        },
    ]
    print(format_rows(rows))
    ratio = explicit.relation_event_count() / max(equivalent.relation_event_count(), 1)
    print(f"event ratio {ratio:.2f}, speed-up {explicit_wall / max(equivalent_wall, 1e-9):.2f}, "
          f"outputs {comparison.summary()}")
    return 0 if comparison.identical else 1


def _run_describe(target: str) -> int:
    if target == "didactic":
        print(build_didactic_architecture().describe())
    elif target == "lte":
        print(build_lte_architecture().describe())
    else:
        print(build_chain_architecture(2).describe())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (``python -m repro.cli``)."""
    arguments = build_parser().parse_args(argv)
    if arguments.command == "table1":
        return _run_table1(arguments.items, arguments.stages)
    if arguments.command == "fig5":
        return _run_fig5(arguments.items, arguments.x_size, arguments.nodes)
    if arguments.command == "fig6":
        return _run_fig6(arguments.frames)
    if arguments.command == "lte":
        return _run_lte(arguments.symbols)
    if arguments.command == "describe":
        return _run_describe(arguments.target)
    raise AssertionError(f"unhandled command {arguments.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
