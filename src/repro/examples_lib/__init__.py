"""Reusable example architectures (the paper's running example)."""

from .didactic import (
    DEFAULT_PERIOD,
    build_didactic_architecture,
    build_paper_equation_graph,
    didactic_stimulus,
    didactic_workloads,
)

__all__ = [
    "DEFAULT_PERIOD",
    "build_didactic_architecture",
    "build_paper_equation_graph",
    "didactic_stimulus",
    "didactic_workloads",
]
