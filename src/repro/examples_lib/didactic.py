"""The didactic example of Fig. 1-4.

This module keeps the paper's running example in one reusable place:

* :func:`build_didactic_architecture` -- the five-function / two-resource
  architecture of Fig. 1 expressed with the library's architecture
  description (F1..F4 mapped onto P1/P2; F0 is the environment).
* :func:`build_paper_equation_graph` -- the *literal* temporal
  dependency graph of Fig. 3, i.e. equations (1)-(6) hand-written with
  10 nodes, kept so a reader can cross-check the code against the paper
  line by line.
* :func:`didactic_workloads` -- the data-size-dependent execution-time
  models ``Ti1 .. Ti4`` shared by every model of the example.
* :func:`didactic_stimulus` -- the "20000 data produced through relation
  M1 with varying data size" environment (item count configurable).

Note on the literal equations
-----------------------------
Equations (1)-(6) fold the resource P1 into the relation-exchange
instants themselves (e.g. ``xM1(k) = u(k) ⊕ xM4(k-1)`` makes the
*exchange* over M1 wait for the processor).  The library's general
semantics (see :mod:`repro.archmodel`) instead lets a zero-time
communication complete as soon as both functions reach it and applies
the resource constraint to the execute steps -- the output instants and
resource busy intervals are the same, but some intermediate exchange
instants differ by design.  Both views are provided: the automatically
built graph (via :func:`repro.core.build_equivalent_spec`) is the one
whose instants match the explicit simulation exactly; the literal graph
reproduces the paper's equations for documentation and for the
(max, +) linear-form examples.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..archmodel import (
    AppFunction,
    ApplicationModel,
    ArchitectureModel,
    Mapping,
    PerUnitExecutionTime,
    PlatformModel,
)
from ..archmodel.workload import ExecutionTimeModel
from ..environment import RandomSizeStimulus
from ..kernel.simtime import Duration, microseconds, nanoseconds
from ..tdg import TemporalDependencyGraph

__all__ = [
    "didactic_workloads",
    "build_didactic_architecture",
    "build_paper_equation_graph",
    "didactic_stimulus",
    "DEFAULT_PERIOD",
]

#: Default period at which the environment (F0) offers data through M1.
DEFAULT_PERIOD = microseconds(30)


def didactic_workloads() -> Dict[str, ExecutionTimeModel]:
    """Execution-time models of the six execute steps of the example.

    Durations are affine in the token's ``size`` attribute, which realises
    the paper's "execution durations are typically variable and can, for
    example, depend on data size information".  The operation counts feed the
    resource-usage observation.
    """
    def model(base_us: float, per_unit_ns: float, ops_per_unit: float) -> ExecutionTimeModel:
        return PerUnitExecutionTime(
            base=microseconds(base_us),
            per_unit=nanoseconds(per_unit_ns),
            attribute="size",
            operations_per_unit=ops_per_unit,
            base_operations=ops_per_unit * 10,
        )

    return {
        "Ti1": model(5.0, 100.0, 400.0),
        "Tj1": model(3.0, 50.0, 200.0),
        "Ti2": model(6.0, 120.0, 900.0),
        "Ti3": model(4.0, 80.0, 300.0),
        "Tj3": model(2.0, 20.0, 150.0),
        "Ti4": model(7.0, 90.0, 1100.0),
    }


def build_didactic_architecture(
    workloads: Optional[Dict[str, ExecutionTimeModel]] = None,
    name: str = "didactic",
) -> ArchitectureModel:
    """Build the architecture of Fig. 1.

    F1 and F2 are allocated to the programmable processor P1 (one function at
    a time); F3 and F4 are allocated to the dedicated hardware P2 (able to
    compute both at the same time).  F0 -- the data source -- is the
    environment and is therefore modelled by the stimulus, not by a function.
    """
    workloads = workloads or didactic_workloads()

    application = ApplicationModel(name)
    application.add_function(
        AppFunction("F1")
        .read("M1")
        .execute("Ti1", workloads["Ti1"])
        .write("M2")
        .execute("Tj1", workloads["Tj1"])
        .write("M3")
    )
    application.add_function(
        AppFunction("F2")
        .read("M2")
        .execute("Ti3", workloads["Ti3"])
        .read("M4")
        .execute("Tj3", workloads["Tj3"])
        .write("M5")
    )
    application.add_function(
        AppFunction("F3").read("M3").execute("Ti2", workloads["Ti2"]).write("M4")
    )
    application.add_function(
        AppFunction("F4").read("M5").execute("Ti4", workloads["Ti4"]).write("M6")
    )

    platform = PlatformModel(f"{name}-platform")
    platform.add_processor("P1")
    platform.add_hardware("P2")

    mapping = (
        Mapping(f"{name}-mapping")
        .allocate("F1", "P1")
        .allocate("F2", "P1")
        .allocate("F3", "P2")
        .allocate("F4", "P2")
    )

    architecture = ArchitectureModel(name, application, platform, mapping)
    architecture.validate()
    return architecture


def build_paper_equation_graph(
    workloads: Optional[Dict[str, ExecutionTimeModel]] = None,
) -> TemporalDependencyGraph:
    """The literal 10-node temporal dependency graph of Fig. 3 (equations (1)-(6)).

    Nodes: ``u``, ``xM1`` .. ``xM6`` plus the delayed occurrences handled as
    delayed arcs; arc weights are the example's execution durations (``e``
    arcs carry a zero weight).
    """
    workloads = workloads or didactic_workloads()

    def weight(label: str):
        # constant workloads stay constant arc weights so the graph can be
        # exported to the linear matrix form; data-dependent ones become
        # per-iteration callables
        from ..core.builder import workload_weight

        return workload_weight(workloads[label])

    graph = TemporalDependencyGraph("didactic-paper-equations")
    graph.add_input("u")
    for name in ("xM1", "xM2", "xM3", "xM4", "xM5"):
        graph.add_internal(name, tags={"kind": "exchange", "relation": name[1:]})
    graph.add_output("xM6", tags={"kind": "exchange", "relation": "M6"})

    # (1) xM1(k) = u(k) ⊕ xM4(k-1)
    graph.add_arc("u", "xM1")
    graph.add_arc("xM4", "xM1", delay=1)
    # (2) xM2(k) = xM1(k) ⊗ Ti1(k) ⊕ xM5(k-1)
    graph.add_arc("xM1", "xM2", weight=weight("Ti1"), label="Ti1")
    graph.add_arc("xM5", "xM2", delay=1)
    # (3) xM3(k) = xM2(k) ⊗ Tj1(k) ⊕ xM4(k-1)
    graph.add_arc("xM2", "xM3", weight=weight("Tj1"), label="Tj1")
    graph.add_arc("xM4", "xM3", delay=1)
    # (4) xM4(k) = xM3(k) ⊗ Ti2(k) ⊕ xM2(k) ⊗ Ti3(k) ⊕ xM5(k-1)
    graph.add_arc("xM3", "xM4", weight=weight("Ti2"), label="Ti2")
    graph.add_arc("xM2", "xM4", weight=weight("Ti3"), label="Ti3")
    graph.add_arc("xM5", "xM4", delay=1)
    # (5) xM5(k) = xM4(k) ⊗ Tj3(k) ⊕ xM6(k-1)
    graph.add_arc("xM4", "xM5", weight=weight("Tj3"), label="Tj3")
    graph.add_arc("xM6", "xM5", delay=1)
    # (6) y(k) = xM6(k) = xM5(k) ⊗ Ti4(k)
    graph.add_arc("xM5", "xM6", weight=weight("Ti4"), label="Ti4")

    graph.validate()
    return graph


def didactic_stimulus(
    count: int = 20000,
    period: Duration = DEFAULT_PERIOD,
    min_size: int = 1,
    max_size: int = 100,
    seed: int = 2014,
) -> RandomSizeStimulus:
    """The environment of the experiments: periodic items with varying data size."""
    return RandomSizeStimulus(
        period=period,
        count=count,
        min_size=min_size,
        max_size=max_size,
        seed=seed,
    )
