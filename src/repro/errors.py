"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can distinguish library-level failures
(bad model descriptions, simulation misuse, ...) from ordinary Python
errors.  The sub-classes mirror the main subsystems:

* :class:`SimulationError` -- misuse of the discrete-event kernel
  (e.g. waiting on a duration from outside a process).
* :class:`ModelError` -- an architecture description is malformed
  (dangling relation, function mapped to an unknown resource, ...).
* :class:`MaxPlusError` -- dimension mismatches and other algebraic
  misuse in the (max, +) package.
* :class:`GraphError` -- structural problems in a temporal dependency
  graph (unknown node, zero-delay cycle, ...).
* :class:`ComputationError` -- failures while evaluating evolution
  instants (missing history, unresolved input instant, ...).
* :class:`ObservationError` -- inconsistent activity traces or metric
  requests (negative bin width, overlapping exclusive activities, ...).
* :class:`CampaignError` -- invalid experiment-campaign descriptions or
  result-store contents (unknown scenario, non-serialisable parameter,
  malformed store record, ...).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "ModelError",
    "MaxPlusError",
    "GraphError",
    "ComputationError",
    "ObservationError",
    "CampaignError",
]


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """Raised when the discrete-event kernel is misused or reaches an invalid state."""


class ModelError(ReproError):
    """Raised when an application/platform/mapping description is invalid."""


class MaxPlusError(ReproError):
    """Raised on invalid (max, +) algebra operations such as dimension mismatches."""


class GraphError(ReproError):
    """Raised when a temporal dependency graph is structurally invalid."""


class ComputationError(ReproError):
    """Raised when evolution instants cannot be computed."""


class ObservationError(ReproError):
    """Raised when activity traces or observation metrics are inconsistent."""


class CampaignError(ReproError):
    """Raised when an experiment campaign or its result store is invalid."""
