"""Application and platform models of the LTE receiver case study.

"The studied architecture is formed by an application made of eight
functions and a platform based on two processing resources ...  The
channel decoding function is considered to be implemented as a
dedicated hardware resource whereas other application functions are
allocated to a digital signal processor." (Section V)

The eight functions form the downlink symbol-processing pipeline::

    SYM_IN -> CpFft -> ChannelEstimation -> Equalization -> Demapping
           -> Descrambling -> RateDematching -> ChannelDecoding -> CrcCheck -> BITS_OUT

Each iteration processes one received OFDM symbol; execution times and
operation counts follow :mod:`repro.lte.workloads`.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..archmodel import (
    AppFunction,
    ApplicationModel,
    ArchitectureModel,
    Mapping,
    PlatformModel,
    ResourceKind,
)
from ..archmodel.workload import ExecutionTimeModel
from .workloads import lte_workload_models

__all__ = [
    "INPUT_RELATION",
    "OUTPUT_RELATION",
    "DSP_NAME",
    "DECODER_NAME",
    "FUNCTION_ORDER",
    "build_lte_architecture",
]

#: External input relation carrying the received OFDM symbols.
INPUT_RELATION = "SYM_IN"

#: External output relation carrying the decoded transport-block bits.
OUTPUT_RELATION = "BITS_OUT"

#: Name of the digital signal processor resource.
DSP_NAME = "DSP"

#: Name of the dedicated channel-decoder hardware resource.
DECODER_NAME = "DECODER"

#: Receiver functions in pipeline order.
FUNCTION_ORDER = (
    "CpFft",
    "ChannelEstimation",
    "Equalization",
    "Demapping",
    "Descrambling",
    "RateDematching",
    "ChannelDecoding",
    "CrcCheck",
)


def build_lte_architecture(
    workloads: Optional[Dict[str, ExecutionTimeModel]] = None,
    name: str = "lte-receiver",
    dsp_frequency_hz: float = 1.0e9,
    decoder_frequency_hz: float = 500.0e6,
) -> ArchitectureModel:
    """Build the eight-function, two-resource receiver architecture of Section V."""
    workloads = workloads or lte_workload_models()
    missing = set(FUNCTION_ORDER) - set(workloads)
    if missing:
        raise ValueError(f"missing workload models for functions: {sorted(missing)}")

    application = ApplicationModel(name)
    relations = [INPUT_RELATION] + [f"S{i}" for i in range(1, len(FUNCTION_ORDER))] + [
        OUTPUT_RELATION
    ]
    for index, function_name in enumerate(FUNCTION_ORDER):
        application.add_function(
            AppFunction(function_name)
            .read(relations[index])
            .execute(function_name, workloads[function_name])
            .write(relations[index + 1])
        )

    platform = PlatformModel(f"{name}-platform")
    platform.add_processor(DSP_NAME, frequency_hz=dsp_frequency_hz, kind=ResourceKind.DSP)
    platform.add_hardware(DECODER_NAME, frequency_hz=decoder_frequency_hz)

    mapping = Mapping(f"{name}-mapping")
    for function_name in FUNCTION_ORDER:
        target = DECODER_NAME if function_name == "ChannelDecoding" else DSP_NAME
        mapping.allocate(function_name, target)

    architecture = ArchitectureModel(name, application, platform, mapping)
    architecture.validate()
    return architecture
