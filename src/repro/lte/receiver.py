"""Application and platform models of the LTE receiver case study.

"The studied architecture is formed by an application made of eight
functions and a platform based on two processing resources ...  The
channel decoding function is considered to be implemented as a
dedicated hardware resource whereas other application functions are
allocated to a digital signal processor." (Section V)

The eight functions form the downlink symbol-processing pipeline::

    SYM_IN -> CpFft -> ChannelEstimation -> Equalization -> Demapping
           -> Descrambling -> RateDematching -> ChannelDecoding -> CrcCheck -> BITS_OUT

Each iteration processes one received OFDM symbol; execution times and
operation counts follow :mod:`repro.lte.workloads`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..archmodel import (
    AppFunction,
    ApplicationModel,
    ArchitectureModel,
    Mapping,
    PlatformModel,
    ResourceKind,
)
from ..archmodel.workload import ExecutionTimeModel, KindScaledExecutionTime
from ..errors import ModelError
from .workloads import lte_workload_models

__all__ = [
    "INPUT_RELATION",
    "OUTPUT_RELATION",
    "DSP_NAME",
    "DECODER_NAME",
    "FUNCTION_ORDER",
    "GROUPED_FUNCTIONS",
    "GROUP_ELIGIBILITY",
    "build_lte_architecture",
    "build_grouped_lte_application",
    "build_lte_bank",
    "heterogeneous_lte_workloads",
]

#: External input relation carrying the received OFDM symbols.
INPUT_RELATION = "SYM_IN"

#: External output relation carrying the decoded transport-block bits.
OUTPUT_RELATION = "BITS_OUT"

#: Name of the digital signal processor resource.
DSP_NAME = "DSP"

#: Name of the dedicated channel-decoder hardware resource.
DECODER_NAME = "DECODER"

#: Receiver functions in pipeline order.
FUNCTION_ORDER = (
    "CpFft",
    "ChannelEstimation",
    "Equalization",
    "Demapping",
    "Descrambling",
    "RateDematching",
    "ChannelDecoding",
    "CrcCheck",
)


def build_lte_architecture(
    workloads: Optional[Dict[str, ExecutionTimeModel]] = None,
    name: str = "lte-receiver",
    dsp_frequency_hz: float = 1.0e9,
    decoder_frequency_hz: float = 500.0e6,
) -> ArchitectureModel:
    """Build the eight-function, two-resource receiver architecture of Section V."""
    workloads = workloads or lte_workload_models()
    missing = set(FUNCTION_ORDER) - set(workloads)
    if missing:
        raise ValueError(f"missing workload models for functions: {sorted(missing)}")

    application = ApplicationModel(name)
    relations = [INPUT_RELATION] + [f"S{i}" for i in range(1, len(FUNCTION_ORDER))] + [
        OUTPUT_RELATION
    ]
    for index, function_name in enumerate(FUNCTION_ORDER):
        application.add_function(
            AppFunction(function_name)
            .read(relations[index])
            .execute(function_name, workloads[function_name])
            .write(relations[index + 1])
        )

    platform = PlatformModel(f"{name}-platform")
    platform.add_processor(DSP_NAME, frequency_hz=dsp_frequency_hz, kind=ResourceKind.DSP)
    platform.add_hardware(DECODER_NAME, frequency_hz=decoder_frequency_hz)

    mapping = Mapping(f"{name}-mapping")
    for function_name in FUNCTION_ORDER:
        target = DECODER_NAME if function_name == "ChannelDecoding" else DSP_NAME
        mapping.allocate(function_name, target)

    architecture = ArchitectureModel(name, application, platform, mapping)
    architecture.validate()
    return architecture


# ----------------------------------------------------------------------
# heterogeneous mapping-DSE variant of the receiver
# ----------------------------------------------------------------------

#: The eight receiver functions folded into four composite functions, so the
#: mapping design space stays enumerable (4 allocation decisions instead of 8)
#: and each composite is a multi-execute chain whose service orders matter.
GROUPED_FUNCTIONS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("FrontEnd", ("CpFft", "ChannelEstimation", "Equalization")),
    ("Demap", ("Demapping", "Descrambling", "RateDematching")),
    ("Decode", ("ChannelDecoding",)),
    ("Check", ("CrcCheck",)),
)

#: Which resource kinds each composite function may legally run on: the
#: front end is DSP firmware, the soft-bit chain ports to a general-purpose
#: processor, turbo decoding needs the dedicated hardware (or, slowly, a
#: DSP), and the CRC check is control code.
GROUP_ELIGIBILITY: Dict[str, Tuple[ResourceKind, ...]] = {
    "FrontEnd": (ResourceKind.DSP,),
    "Demap": (ResourceKind.DSP, ResourceKind.PROCESSOR),
    "Decode": (ResourceKind.HARDWARE, ResourceKind.DSP),
    "Check": (ResourceKind.PROCESSOR, ResourceKind.DSP),
}


def heterogeneous_lte_workloads(
    processor_slowdown: float = 2.5,
    dsp_decoder_slowdown: float = 20.0,
) -> Dict[str, ExecutionTimeModel]:
    """Kind-scaled execution-time models for a mixed processors/DSP/hardware bank.

    The base models of :func:`~repro.lte.workloads.lte_workload_models` are
    calibrated for the paper's platform (DSP firmware, dedicated decoder
    hardware).  On a heterogeneous bank the same function runs elsewhere at a
    different speed: the DSP-native functions take ``processor_slowdown`` x
    longer on a general-purpose processor, and turbo decoding takes
    ``dsp_decoder_slowdown`` x longer as DSP software than as hardware.
    """
    models: Dict[str, ExecutionTimeModel] = {}
    for name, base in lte_workload_models().items():
        if name == "ChannelDecoding":
            scale = {
                ResourceKind.HARDWARE: 1.0,
                ResourceKind.DSP: dsp_decoder_slowdown,
            }
        else:
            scale = {
                ResourceKind.DSP: 1.0,
                ResourceKind.PROCESSOR: processor_slowdown,
            }
        models[name] = KindScaledExecutionTime(base, scale)
    return models


def build_grouped_lte_application(
    workloads: Optional[Dict[str, ExecutionTimeModel]] = None,
    name: str = "lte-grouped",
    fifo_capacity: int = 4,
) -> ApplicationModel:
    """The receiver pipeline as four composite functions connected by FIFOs.

    Each composite reads one relation, executes its member functions in
    pipeline order and writes one relation.  The inter-group relations are
    FIFOs (capacity ``fifo_capacity``) instead of rendezvous: groups then
    pipeline freely across iterations, and the same-iteration dependency DAG
    keeps one node per step, which keeps service-order sampling and the
    equivalent-model template well-behaved on shared serialized resources.
    """
    if fifo_capacity < 1:
        raise ModelError("the inter-group FIFO capacity must be >= 1")
    workloads = workloads or heterogeneous_lte_workloads()
    missing = set(FUNCTION_ORDER) - set(workloads)
    if missing:
        raise ModelError(f"missing workload models for functions: {sorted(missing)}")

    application = ApplicationModel(name)
    relations = (
        [INPUT_RELATION]
        + [f"G{i}" for i in range(1, len(GROUPED_FUNCTIONS))]
        + [OUTPUT_RELATION]
    )
    for index, (group_name, members) in enumerate(GROUPED_FUNCTIONS):
        function = AppFunction(group_name).read(relations[index])
        for member in members:
            function.execute(member, workloads[member])
        function.write(relations[index + 1])
        application.add_function(function)
    for relation in relations[1:-1]:
        application.declare_fifo(relation, capacity=fifo_capacity)
    application.validate()
    return application


def build_lte_bank(
    processors: int = 2,
    dsps: int = 2,
    hardware: int = 1,
    processor_frequency_hz: float = 8.0e8,
    dsp_frequency_hz: float = 1.0e9,
    decoder_frequency_hz: float = 5.0e8,
) -> PlatformModel:
    """A mixed bank of candidate resources for the grouped receiver.

    ``processors`` general-purpose processors (CPU1..), ``dsps`` digital
    signal processors (DSP1..) and ``hardware`` dedicated decoder resources
    (HW1..) -- the heterogeneous counterpart of the uniform processor banks
    of the other design problems.
    """
    if min(processors, dsps, hardware) < 0 or processors + dsps + hardware < 1:
        raise ModelError("the bank needs non-negative counts and at least one resource")
    platform = PlatformModel("lte-bank")
    for index in range(processors):
        platform.add_processor(f"CPU{index + 1}", frequency_hz=processor_frequency_hz)
    for index in range(dsps):
        platform.add_dsp(f"DSP{index + 1}", frequency_hz=dsp_frequency_hz)
    for index in range(hardware):
        platform.add_hardware(f"HW{index + 1}", frequency_hz=decoder_frequency_hz)
    return platform
