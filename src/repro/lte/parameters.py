"""LTE frame and symbol parameters.

The case study of Section V evaluates a receiver implementing part of
the LTE downlink physical layer.  "This protocol especially supports
high flexibility according to transmitted frames' parameters to adapt
to varying user demands": the computational load of every receiver
function depends on the number of allocated resource blocks and on the
modulation and coding scheme of the frame being received.

This module defines those parameters and a seeded generator of varying
frame configurations, mirroring the paper's environment that
"periodically produces data frames with varying parameters".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence

from ..errors import ModelError
from ..kernel.simtime import Duration, microseconds

__all__ = [
    "SYMBOLS_PER_FRAME",
    "SYMBOL_PERIOD",
    "ModulationScheme",
    "FrameConfig",
    "FrameSequence",
]

#: Number of OFDM symbols processed per frame in the case study (Fig. 6).
SYMBOLS_PER_FRAME = 14

#: Spacing between two received symbols (Fig. 6: "spaced by a period of 71.42 us").
SYMBOL_PERIOD: Duration = microseconds(71.42)


@dataclass(frozen=True)
class ModulationScheme:
    """One LTE modulation and coding configuration."""

    name: str
    bits_per_symbol: int
    code_rate: float

    def __post_init__(self) -> None:
        if self.bits_per_symbol not in (2, 4, 6):
            raise ModelError("LTE modulation carries 2 (QPSK), 4 (16QAM) or 6 (64QAM) bits")
        if not 0.0 < self.code_rate <= 1.0:
            raise ModelError("the code rate must be in (0, 1]")


#: The three downlink modulation schemes used by the scenario generator.
MODULATION_SCHEMES: Sequence[ModulationScheme] = (
    ModulationScheme("QPSK", 2, 1 / 3),
    ModulationScheme("16QAM", 4, 1 / 2),
    ModulationScheme("64QAM", 6, 3 / 4),
)

#: Resource-block allocations offered by the scenario generator (1.4 .. 20 MHz).
RESOURCE_BLOCK_CHOICES: Sequence[int] = (6, 15, 25, 50, 75, 100)


@dataclass(frozen=True)
class FrameConfig:
    """Parameters of one received frame (shared by its 14 symbols)."""

    index: int
    resource_blocks: int
    modulation: ModulationScheme

    @property
    def subcarriers(self) -> int:
        """Occupied subcarriers (12 per resource block)."""
        return 12 * self.resource_blocks

    def symbol_attributes(self, symbol_in_frame: int) -> Dict[str, object]:
        """Attribute mapping attached to the token of one symbol of this frame."""
        if not 0 <= symbol_in_frame < SYMBOLS_PER_FRAME:
            raise ModelError(
                f"symbol index {symbol_in_frame} out of range [0, {SYMBOLS_PER_FRAME})"
            )
        return {
            "frame": self.index,
            "symbol": symbol_in_frame,
            "resource_blocks": self.resource_blocks,
            "subcarriers": self.subcarriers,
            "bits_per_symbol": self.modulation.bits_per_symbol,
            "code_rate": self.modulation.code_rate,
            "modulation": self.modulation.name,
            "is_control": symbol_in_frame < 2,
        }


class FrameSequence:
    """A reproducible sequence of frame configurations with varying parameters."""

    def __init__(
        self,
        frame_count: int,
        seed: int = 2014,
        resource_block_choices: Sequence[int] = RESOURCE_BLOCK_CHOICES,
        modulation_choices: Sequence[ModulationScheme] = MODULATION_SCHEMES,
    ) -> None:
        if frame_count < 1:
            raise ModelError("a frame sequence needs at least one frame")
        rng = random.Random(seed)
        self._frames: List[FrameConfig] = [
            FrameConfig(
                index=index,
                resource_blocks=rng.choice(list(resource_block_choices)),
                modulation=rng.choice(list(modulation_choices)),
            )
            for index in range(frame_count)
        ]

    def __len__(self) -> int:
        return len(self._frames)

    def __iter__(self) -> Iterator[FrameConfig]:
        return iter(self._frames)

    def frame(self, index: int) -> FrameConfig:
        return self._frames[index]

    def frame_of_symbol(self, symbol_index: int) -> FrameConfig:
        """Frame configuration of the ``symbol_index``-th symbol of the run."""
        return self._frames[symbol_index // SYMBOLS_PER_FRAME]

    def symbol_attributes(self, symbol_index: int) -> Dict[str, object]:
        """Attributes of the ``symbol_index``-th symbol of the run."""
        frame = self.frame_of_symbol(symbol_index)
        return frame.symbol_attributes(symbol_index % SYMBOLS_PER_FRAME)

    @property
    def symbol_count(self) -> int:
        return len(self._frames) * SYMBOLS_PER_FRAME
