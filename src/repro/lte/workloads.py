"""Computation-load models of the LTE receiver functions.

The paper's case study (and the earlier journal paper [14] it builds
on) characterises each receiver function by the computational
complexity it puts on its processing resource.  Absolute figures from
the authors' characterisation are not public, so this module provides a
synthetic but structurally faithful substitution (see DESIGN.md):

* every function's operation count scales with the frame parameters
  (allocated resource blocks, bits per modulation symbol), which is
  what makes execution times data-dependent;
* every function has an *effective processing rate* on its resource, so
  that the observed computational complexity per time unit lands in the
  ranges visible in Fig. 6 -- a few GOPS (4-8) for the functions mapped
  on the digital signal processor and 75-150 GOPS for the dedicated
  channel-decoder hardware;
* with a full 20 MHz / 64QAM configuration the per-symbol processing
  time stays below the 71.42 us symbol period, as required for a
  real-time receiver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..archmodel.token import DataToken
from ..archmodel.workload import ExecutionTimeModel
from ..kernel.simtime import Duration

__all__ = ["LteFunctionLoad", "lte_function_loads", "lte_workload_models"]


@dataclass(frozen=True)
class LteFunctionLoad:
    """Operation-count model of one receiver function.

    ``operations = base + per_rb * resource_blocks + per_bit * resource_blocks * bits``
    and the execution time is ``operations / rate_ops_per_second``.
    """

    name: str
    base_operations: float
    operations_per_rb: float
    operations_per_rb_bit: float
    rate_ops_per_second: float

    def operations(self, token: Optional[DataToken]) -> float:
        resource_blocks = int(token.get("resource_blocks", 6)) if token else 6
        bits = int(token.get("bits_per_symbol", 2)) if token else 2
        return (
            self.base_operations
            + self.operations_per_rb * resource_blocks
            + self.operations_per_rb_bit * resource_blocks * bits
        )

    def duration(self, token: Optional[DataToken]) -> Duration:
        operations = self.operations(token)
        return Duration.from_seconds(operations / self.rate_ops_per_second)


def _decoder_rate(token: Optional[DataToken]) -> float:
    """Effective decoder throughput: higher-order modulations use the faster mode.

    This is what produces the two usage levels (~75 and ~150 GOPS) visible in
    Fig. 6(c).
    """
    bits = int(token.get("bits_per_symbol", 2)) if token else 2
    if bits <= 2:
        return 75e9
    if bits == 4:
        return 110e9
    return 150e9


def lte_function_loads() -> Dict[str, LteFunctionLoad]:
    """Per-function load models of the eight receiver functions."""
    return {
        # Front end: cyclic-prefix removal and FFT.
        "CpFft": LteFunctionLoad("CpFft", 10_000.0, 800.0, 0.0, 8e9),
        # Pilot-based channel estimation.
        "ChannelEstimation": LteFunctionLoad("ChannelEstimation", 2_000.0, 600.0, 0.0, 6e9),
        # MMSE equalisation of the occupied subcarriers.
        "Equalization": LteFunctionLoad("Equalization", 2_000.0, 1_000.0, 0.0, 8e9),
        # Soft demapping (LLR computation), scales with the modulation order.
        "Demapping": LteFunctionLoad("Demapping", 1_000.0, 0.0, 60.0, 7e9),
        # Descrambling of the soft bits.
        "Descrambling": LteFunctionLoad("Descrambling", 500.0, 0.0, 20.0, 5e9),
        # HARQ rate dematching.
        "RateDematching": LteFunctionLoad("RateDematching", 500.0, 0.0, 30.0, 5e9),
        # Turbo channel decoding (dedicated hardware resource).
        "ChannelDecoding": LteFunctionLoad("ChannelDecoding", 20_000.0, 0.0, 2_000.0, 150e9),
        # Transport-block CRC check.
        "CrcCheck": LteFunctionLoad("CrcCheck", 200.0, 0.0, 10.0, 4e9),
    }


class _LoadExecutionTime(ExecutionTimeModel):
    """Adapter turning an :class:`LteFunctionLoad` into an execution-time model."""

    def __init__(self, load: LteFunctionLoad, variable_rate: bool = False) -> None:
        self._load = load
        self._variable_rate = variable_rate

    def duration(self, k: int, token: Optional[DataToken]) -> Duration:
        operations = self._load.operations(token)
        rate = _decoder_rate(token) if self._variable_rate else self._load.rate_ops_per_second
        return Duration.from_seconds(operations / rate)

    def operations(self, k: int, token: Optional[DataToken]) -> float:
        return self._load.operations(token)


def lte_workload_models() -> Dict[str, ExecutionTimeModel]:
    """Execution-time models for the eight receiver functions.

    The channel decoder uses a modulation-dependent effective rate (the
    dedicated hardware has a fast mode for high-order modulations); every
    other function uses its fixed DSP rate.
    """
    loads = lte_function_loads()
    models: Dict[str, ExecutionTimeModel] = {}
    for name, load in loads.items():
        models[name] = _LoadExecutionTime(load, variable_rate=(name == "ChannelDecoding"))
    return models
