"""LTE physical-layer receiver case study (Section V / Fig. 6 of the paper)."""

from .parameters import (
    SYMBOL_PERIOD,
    SYMBOLS_PER_FRAME,
    FrameConfig,
    FrameSequence,
    ModulationScheme,
)
from .receiver import (
    DECODER_NAME,
    DSP_NAME,
    FUNCTION_ORDER,
    INPUT_RELATION,
    OUTPUT_RELATION,
    build_lte_architecture,
)
from .scenario import Fig6Observation, build_lte_models, fig6_observation, lte_symbol_stimulus
from .workloads import LteFunctionLoad, lte_function_loads, lte_workload_models

__all__ = [
    "SYMBOL_PERIOD",
    "SYMBOLS_PER_FRAME",
    "FrameConfig",
    "FrameSequence",
    "ModulationScheme",
    "DECODER_NAME",
    "DSP_NAME",
    "FUNCTION_ORDER",
    "INPUT_RELATION",
    "OUTPUT_RELATION",
    "build_lte_architecture",
    "Fig6Observation",
    "build_lte_models",
    "fig6_observation",
    "lte_symbol_stimulus",
    "LteFunctionLoad",
    "lte_function_loads",
    "lte_workload_models",
]
