"""LTE physical-layer receiver case study (Section V / Fig. 6 of the paper)."""

from .parameters import (
    SYMBOL_PERIOD,
    SYMBOLS_PER_FRAME,
    FrameConfig,
    FrameSequence,
    ModulationScheme,
)
from .receiver import (
    DECODER_NAME,
    DSP_NAME,
    FUNCTION_ORDER,
    GROUP_ELIGIBILITY,
    GROUPED_FUNCTIONS,
    INPUT_RELATION,
    OUTPUT_RELATION,
    build_grouped_lte_application,
    build_lte_architecture,
    build_lte_bank,
    heterogeneous_lte_workloads,
)
from .scenario import Fig6Observation, build_lte_models, fig6_observation, lte_symbol_stimulus
from .workloads import LteFunctionLoad, lte_function_loads, lte_workload_models

__all__ = [
    "SYMBOL_PERIOD",
    "SYMBOLS_PER_FRAME",
    "FrameConfig",
    "FrameSequence",
    "ModulationScheme",
    "DECODER_NAME",
    "DSP_NAME",
    "FUNCTION_ORDER",
    "INPUT_RELATION",
    "OUTPUT_RELATION",
    "GROUP_ELIGIBILITY",
    "GROUPED_FUNCTIONS",
    "build_grouped_lte_application",
    "build_lte_architecture",
    "build_lte_bank",
    "heterogeneous_lte_workloads",
    "Fig6Observation",
    "build_lte_models",
    "fig6_observation",
    "lte_symbol_stimulus",
    "LteFunctionLoad",
    "lte_function_loads",
    "lte_workload_models",
]
