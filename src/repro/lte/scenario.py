"""Executable scenarios of the LTE case study.

This module wires the receiver architecture, the symbol stimulus and
the two model kinds together, and produces the observations of Fig. 6:

* :func:`lte_symbol_stimulus` -- the environment that "periodically
  produces data frames with varying parameters" (one token per OFDM
  symbol, 14 symbols per frame, 71.42 us apart);
* :func:`build_lte_models` -- paired explicit / equivalent models for a
  given number of symbols;
* :func:`fig6_observation` -- the data behind Fig. 6: the ``u(k)`` /
  ``y(k)`` instants over simulation time for one frame and the usage
  (GOPS) profiles of the DSP and of the dedicated decoder over the
  observation time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.builder import build_equivalent_spec
from ..core.model import EquivalentArchitectureModel
from ..environment.stimulus import PeriodicStimulus
from ..errors import ModelError
from ..explicit.model import ExplicitArchitectureModel
from ..kernel.simtime import Duration, Time, microseconds
from ..observation.usage import UsageProfile, complexity_profile
from .parameters import (
    MODULATION_SCHEMES,
    SYMBOL_PERIOD,
    SYMBOLS_PER_FRAME,
    FrameConfig,
    FrameSequence,
)
from .receiver import (
    DECODER_NAME,
    DSP_NAME,
    INPUT_RELATION,
    OUTPUT_RELATION,
    build_lte_architecture,
)

__all__ = [
    "lte_symbol_stimulus",
    "lte_fixed_symbol_stimulus",
    "build_lte_models",
    "Fig6Observation",
    "fig6_observation",
]


def lte_symbol_stimulus(
    symbol_count: int,
    seed: int = 2014,
    period: Duration = SYMBOL_PERIOD,
) -> PeriodicStimulus:
    """Environment producing ``symbol_count`` OFDM symbols with varying frame parameters."""
    if symbol_count < 1:
        raise ModelError("the stimulus needs at least one symbol")
    frame_count = (symbol_count + SYMBOLS_PER_FRAME - 1) // SYMBOLS_PER_FRAME
    frames = FrameSequence(frame_count, seed=seed)
    return PeriodicStimulus(
        period=period,
        count=symbol_count,
        attributes_fn=frames.symbol_attributes,
    )


def lte_fixed_symbol_stimulus(
    symbol_count: int,
    resource_blocks: int = 50,
    modulation: str = "16QAM",
    period: Duration = SYMBOL_PERIOD,
) -> PeriodicStimulus:
    """Environment producing symbols of one *pinned* frame configuration.

    Every frame carries the same resource-block allocation and modulation
    scheme, so each receiver function's execution time is identical for all
    symbols -- the token attributes still vary per symbol (frame/symbol
    indices, the control-symbol flag), making this the LTE workload whose
    durations are constant without its token stream being constant.  This is
    the stationary regime the steady-state evaluator exploits.
    """
    if symbol_count < 1:
        raise ModelError("the stimulus needs at least one symbol")
    chosen = next(
        (scheme for scheme in MODULATION_SCHEMES if scheme.name == modulation), None
    )
    if chosen is None:
        known = ", ".join(scheme.name for scheme in MODULATION_SCHEMES)
        raise ModelError(f"unknown modulation scheme {modulation!r}; known: {known}")
    config = FrameConfig(index=0, resource_blocks=resource_blocks, modulation=chosen)

    def attributes(symbol_index: int) -> Dict[str, object]:
        frame, symbol_in_frame = divmod(symbol_index, SYMBOLS_PER_FRAME)
        attrs = config.symbol_attributes(symbol_in_frame)
        attrs["frame"] = frame
        return attrs

    return PeriodicStimulus(
        period=period,
        count=symbol_count,
        attributes_fn=attributes,
    )


def build_lte_models(
    symbol_count: int,
    seed: int = 2014,
    record_relations: bool = False,
    observe_resources: bool = False,
) -> Tuple[ExplicitArchitectureModel, EquivalentArchitectureModel]:
    """Build the two models of Section V for the same symbol sequence.

    The first element is the fully event-driven model ("exhibiting all
    relations among application functions"), the second the model using the
    dynamic computation method.
    """
    explicit_architecture = build_lte_architecture()
    explicit_model = ExplicitArchitectureModel(
        explicit_architecture,
        {INPUT_RELATION: lte_symbol_stimulus(symbol_count, seed)},
    )
    equivalent_architecture = build_lte_architecture()
    spec = build_equivalent_spec(equivalent_architecture)
    equivalent_model = EquivalentArchitectureModel(
        equivalent_architecture,
        {INPUT_RELATION: lte_symbol_stimulus(symbol_count, seed)},
        spec=spec,
        record_relations=record_relations,
        observe_resources=observe_resources,
    )
    return explicit_model, equivalent_model


@dataclass
class Fig6Observation:
    """The data plotted in Fig. 6, produced by the equivalent model alone."""

    symbol_count: int
    input_instants: List[Time]          # u(k): symbol arrivals over the simulation time
    output_instants: List[Optional[Time]]  # y(k): computed output evolution instants
    dsp_profile: UsageProfile           # Fig. 6(b): DSP usage over the observation time
    decoder_profile: UsageProfile       # Fig. 6(c): dedicated hardware usage
    tdg_nodes: int

    def as_series(self) -> Dict[str, List[Tuple[float, float]]]:
        """The three series as (time in us, value) rows, ready for printing/plotting."""
        return {
            "u(k) [us]": [(float(k), t.microseconds) for k, t in enumerate(self.input_instants)],
            "y(k) [us]": [
                (float(k), t.microseconds if t is not None else float("nan"))
                for k, t in enumerate(self.output_instants)
            ],
            "DSP GOPS": self.dsp_profile.as_rows(),
            "DECODER GOPS": self.decoder_profile.as_rows(),
        }


def fig6_observation(
    frame_count: int = 1,
    seed: int = 2014,
    bin_width: Duration = microseconds(5),
) -> Fig6Observation:
    """Reproduce the observation of Fig. 6 for ``frame_count`` frames.

    The equivalent model is simulated; the usage of the two processing
    resources is then reconstructed over the observation time from the
    computed intermediate instants, with no additional simulation events.
    """
    symbol_count = frame_count * SYMBOLS_PER_FRAME
    architecture = build_lte_architecture()
    spec = build_equivalent_spec(architecture)
    model = EquivalentArchitectureModel(
        architecture,
        {INPUT_RELATION: lte_symbol_stimulus(symbol_count, seed)},
        spec=spec,
        record_relations=True,
        observe_resources=True,
    )
    model.run()
    trace = model.reconstructed_usage()
    window = trace.span()
    return Fig6Observation(
        symbol_count=symbol_count,
        input_instants=model.offer_instants(INPUT_RELATION),
        output_instants=model.computer.output_instants(OUTPUT_RELATION),
        dsp_profile=complexity_profile(trace, DSP_NAME, bin_width, window),
        decoder_profile=complexity_profile(trace, DECODER_NAME, bin_width, window),
        tdg_nodes=spec.graph.node_count,
    )
